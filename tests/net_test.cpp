#include <gtest/gtest.h>

#include <set>

#include "apps/traffic.hpp"
#include "net/topology.hpp"
#include "net/udp.hpp"

namespace netmon::net {
namespace {

using sim::Duration;

TEST(Address, MacFormatting) {
  EXPECT_EQ(MacAddr(0x0200AABBCCDDull).to_string(), "02:00:aa:bb:cc:dd");
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddr(1).is_broadcast());
}

TEST(Address, IpParseAndFormat) {
  EXPECT_EQ(IpAddr::parse("10.0.1.2").to_string(), "10.0.1.2");
  EXPECT_EQ(IpAddr(192, 168, 1, 250).raw(), 0xC0A801FAu);
  EXPECT_THROW(IpAddr::parse("10.0.1"), std::invalid_argument);
  EXPECT_THROW(IpAddr::parse("10.0.1.256"), std::invalid_argument);
  EXPECT_THROW(IpAddr::parse("banana"), std::invalid_argument);
}

TEST(Address, PrefixContainment) {
  const Prefix p(IpAddr(10, 0, 0, 0), 8);
  EXPECT_TRUE(p.contains(IpAddr(10, 255, 3, 4)));
  EXPECT_FALSE(p.contains(IpAddr(11, 0, 0, 1)));
  const Prefix host_route(IpAddr(10, 0, 0, 7), 32);
  EXPECT_TRUE(host_route.contains(IpAddr(10, 0, 0, 7)));
  EXPECT_FALSE(host_route.contains(IpAddr(10, 0, 0, 8)));
  const Prefix all(IpAddr(1, 2, 3, 4), 0);
  EXPECT_TRUE(all.contains(IpAddr(200, 1, 1, 1)));
  EXPECT_THROW(Prefix(IpAddr(), 33), std::invalid_argument);
}

TEST(Address, PrefixMasksHostBits) {
  const Prefix p(IpAddr(10, 0, 3, 7), 16);
  EXPECT_EQ(p.network().to_string(), "10.0.0.0");
  EXPECT_EQ(p.to_string(), "10.0.0.0/16");
}

TEST(Packet, WireSizes) {
  Packet p;
  p.protocol = IpProto::kUdp;
  p.payload_bytes = 100;
  EXPECT_EQ(p.size_on_wire(), 128u);
  p.protocol = IpProto::kTcp;
  EXPECT_EQ(p.size_on_wire(), 140u);
  Frame f{MacAddr(1), MacAddr(2), p};
  EXPECT_EQ(f.size_bytes(), 158u);
}

TEST(Packet, MinimumFrameSize) {
  Packet p;
  p.payload_bytes = 1;
  Frame f{MacAddr(1), MacAddr(2), p};
  EXPECT_EQ(f.size_bytes(), Frame::kMinFrameBytes);
}

TEST(RoutingTable, LongestPrefixWins) {
  RoutingTable table;
  table.add(Prefix(IpAddr(10, 0, 0, 0), 8), IpAddr(1, 1, 1, 1), nullptr);
  table.add(Prefix(IpAddr(10, 1, 0, 0), 16), IpAddr(2, 2, 2, 2), nullptr);
  auto r = table.lookup(IpAddr(10, 1, 5, 5));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->gateway, IpAddr(2, 2, 2, 2));
  r = table.lookup(IpAddr(10, 2, 5, 5));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->gateway, IpAddr(1, 1, 1, 1));
  EXPECT_FALSE(table.lookup(IpAddr(11, 0, 0, 1)));
}

TEST(RoutingTable, LaterEqualLengthOverrides) {
  RoutingTable table;
  table.add(Prefix(IpAddr(10, 0, 0, 1), 32), IpAddr(1, 1, 1, 1), nullptr);
  table.add(Prefix(IpAddr(10, 0, 0, 1), 32), IpAddr(9, 9, 9, 9), nullptr);
  auto r = table.lookup(IpAddr(10, 0, 0, 1));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->gateway, IpAddr(9, 9, 9, 9));
}

TEST(RoutingTable, RemoveByPrefix) {
  RoutingTable table;
  table.add(Prefix(IpAddr(10, 0, 0, 1), 32), IpAddr(1, 1, 1, 1), nullptr);
  table.remove(Prefix(IpAddr(10, 0, 0, 1), 32));
  EXPECT_FALSE(table.lookup(IpAddr(10, 0, 0, 1)));
}

// --- fixture: two hosts on a point-to-point link -------------------------

class P2PFixture : public ::testing::Test {
 protected:
  P2PFixture() : network(sim, util::Rng(1)) {
    a = &network.add_host("a");
    b = &network.add_host("b");
    network.connect(*a, IpAddr(10, 0, 0, 1), *b, IpAddr(10, 0, 0, 2), 24,
                    10e6, Duration::us(100));
    network.auto_route();
  }
  sim::Simulator sim;
  Network network;
  net::Host* a;
  net::Host* b;
};

TEST_F(P2PFixture, UdpDatagramDelivered) {
  int received = 0;
  IpAddr seen_src;
  b->udp().bind(7000, [&](const Packet& p) {
    ++received;
    seen_src = p.src;
  });
  auto& sock = a->udp().bind(0, nullptr);
  sock.send_to(IpAddr(10, 0, 0, 2), 7000, 100, nullptr,
               TrafficClass::kApplication);
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(seen_src, IpAddr(10, 0, 0, 1));
}

TEST_F(P2PFixture, DeliveryDelayMatchesSerializationPlusPropagation) {
  sim::TimePoint arrival{};
  b->udp().bind(7000, [&](const Packet&) { arrival = sim.now(); });
  auto& sock = a->udp().bind(0, nullptr);
  sock.send_to(IpAddr(10, 0, 0, 2), 7000, 1000, nullptr,
               TrafficClass::kApplication);
  sim.run();
  // Frame = 1000 + 28 + 18 = 1046 B -> 836.8us at 10 Mb/s, +100us prop.
  const double expected = 1046.0 * 8.0 / 10e6 + 100e-6;
  EXPECT_NEAR(arrival.to_seconds(), expected, 1e-9);
}

TEST_F(P2PFixture, NoDuplicationNoReorderOnLink) {
  std::vector<std::uint64_t> ids;
  b->udp().bind(7000, [&](const Packet& p) { ids.push_back(p.id); });
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_in(Duration::us(i), [&, i] {
      Packet p;
      p.dst = IpAddr(10, 0, 0, 2);
      p.dst_port = 7000;
      p.payload_bytes = 200;
      p.id = 1000 + i;
      sent.push_back(p.id);
      a->send_packet(std::move(p));
    });
  }
  sim.run();
  EXPECT_EQ(ids, sent);
}

TEST_F(P2PFixture, ByteConservationOnNics) {
  b->udp().bind(7000, nullptr);
  auto& sock = a->udp().bind(0, nullptr);
  for (int i = 0; i < 300; ++i) {
    sock.send_to(IpAddr(10, 0, 0, 2), 7000, 1200, nullptr,
                 TrafficClass::kApplication);
  }
  sim.run();
  const auto& out = a->nic(0).counters();
  const auto& in = b->nic(0).counters();
  // Everything transmitted was either delivered or dropped at the sender's
  // queue; nothing vanished on the wire.
  EXPECT_EQ(out.out_frames + out.out_drops, 300u);
  EXPECT_EQ(in.in_frames, out.out_frames);
  EXPECT_EQ(in.in_octets, out.out_octets);
  EXPECT_GT(out.out_drops, 0u);  // a 64-deep queue can't hold a 300 blast
}

TEST_F(P2PFixture, LinkDownHoldsTrafficUntilRestored) {
  int received = 0;
  b->udp().bind(7000, [&](const Packet&) { ++received; });
  network.links()[0]->set_up(false);
  auto& sock = a->udp().bind(0, nullptr);
  sock.send_to(IpAddr(10, 0, 0, 2), 7000, 100, nullptr,
               TrafficClass::kApplication);
  sim.run();
  EXPECT_EQ(received, 0);
  // The frame stayed in the NIC queue (carrier loss does not clear host
  // queues); restoring the link releases it, plus anything sent after.
  network.links()[0]->set_up(true);
  sock.send_to(IpAddr(10, 0, 0, 2), 7000, 100, nullptr,
               TrafficClass::kApplication);
  sim.run();
  EXPECT_EQ(received, 2);
}

TEST_F(P2PFixture, LinkDownDropsFramesInFlight) {
  int received = 0;
  b->udp().bind(7000, [&](const Packet&) { ++received; });
  auto& sock = a->udp().bind(0, nullptr);
  sock.send_to(IpAddr(10, 0, 0, 2), 7000, 1000, nullptr,
               TrafficClass::kApplication);
  // Cut the link mid-flight (serialization alone takes ~837us).
  sim.schedule_in(Duration::us(200),
                  [&] { network.links()[0]->set_up(false); });
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.links()[0]->frames_dropped_down(), 1u);
}

TEST_F(P2PFixture, HostDownNeitherSendsNorReceives) {
  int received = 0;
  b->udp().bind(7000, [&](const Packet&) { ++received; });
  b->set_up(false);
  auto& sock = a->udp().bind(0, nullptr);
  sock.send_to(IpAddr(10, 0, 0, 2), 7000, 100, nullptr,
               TrafficClass::kApplication);
  sim.run();
  EXPECT_EQ(received, 0);
  // A down host cannot originate traffic either.
  a->set_up(false);
  auto& sock2 = a->udp().bind(0, nullptr);
  EXPECT_FALSE(sock2.send_to(IpAddr(10, 0, 0, 2), 7000, 100, nullptr,
                             TrafficClass::kApplication));
}

TEST_F(P2PFixture, TrafficClassAccounting) {
  b->udp().bind(7000, nullptr);
  auto& sock = a->udp().bind(0, nullptr);
  sock.send_to(IpAddr(10, 0, 0, 2), 7000, 100, nullptr,
               TrafficClass::kMonitoring);
  sock.send_to(IpAddr(10, 0, 0, 2), 7000, 100, nullptr,
               TrafficClass::kManagement);
  sim.run();
  const auto totals = network.octets_by_class();
  EXPECT_EQ(totals[static_cast<std::size_t>(TrafficClass::kMonitoring)],
            totals[static_cast<std::size_t>(TrafficClass::kManagement)]);
  EXPECT_GT(totals[static_cast<std::size_t>(TrafficClass::kMonitoring)], 0u);
  EXPECT_EQ(totals[static_cast<std::size_t>(TrafficClass::kApplication)], 0u);
}

TEST_F(P2PFixture, NoRouteCounted) {
  Packet p;
  p.dst = IpAddr(99, 9, 9, 9);
  p.dst_port = 1;
  EXPECT_FALSE(a->send_packet(std::move(p)));
  EXPECT_EQ(a->counters().ip_no_routes, 1u);
}

// --- shared segment -------------------------------------------------------

class SharedFixture : public ::testing::Test {
 protected:
  SharedFixture() : network(sim, util::Rng(3)) {
    segment = &network.add_segment("lan", 10e6, Duration::us(5));
    for (int i = 0; i < 4; ++i) {
      auto& host = network.add_host("h" + std::to_string(i));
      network.attach(host, *segment,
                     IpAddr(192, 168, 0, std::uint8_t(i + 1)), 24);
      hosts.push_back(&host);
    }
    network.auto_route();
  }
  sim::Simulator sim;
  Network network;
  SharedSegment* segment;
  std::vector<net::Host*> hosts;
};

TEST_F(SharedFixture, EveryHostDeliversUnicastOnlyToTarget) {
  int at_target = 0, at_others = 0;
  hosts[1]->udp().bind(7000, [&](const Packet&) { ++at_target; });
  hosts[2]->udp().bind(7000, [&](const Packet&) { ++at_others; });
  hosts[3]->udp().bind(7000, [&](const Packet&) { ++at_others; });
  auto& sock = hosts[0]->udp().bind(0, nullptr);
  sock.send_to(IpAddr(192, 168, 0, 2), 7000, 100, nullptr,
               TrafficClass::kApplication);
  sim.run();
  EXPECT_EQ(at_target, 1);
  EXPECT_EQ(at_others, 0);
}

TEST_F(SharedFixture, PromiscuousTapSeesThirdPartyTraffic) {
  std::uint64_t tapped = 0;
  hosts[3]->nic(0).set_promiscuous(true);
  hosts[3]->nic(0).add_tap([&](const Frame&) { ++tapped; });
  hosts[1]->udp().bind(7000, nullptr);
  auto& sock = hosts[0]->udp().bind(0, nullptr);
  for (int i = 0; i < 10; ++i) {
    sock.send_to(IpAddr(192, 168, 0, 2), 7000, 100, nullptr,
                 TrafficClass::kApplication);
  }
  sim.run();
  EXPECT_EQ(tapped, 10u);
}

TEST_F(SharedFixture, ContentionCausesCollisionsButDeliversAll) {
  int received = 0;
  hosts[3]->udp().bind(7000, [&](const Packet&) { ++received; });
  const int kPerSender = 20;
  for (int s = 0; s < 3; ++s) {
    auto& sock = hosts[s]->udp().bind(0, nullptr);
    for (int i = 0; i < kPerSender; ++i) {
      // All enqueue at t=0: guaranteed contention.
      sock.send_to(IpAddr(192, 168, 0, 4), 7000, 400, nullptr,
                   TrafficClass::kApplication);
    }
  }
  sim.run();
  EXPECT_GT(segment->stats().collisions, 0u);
  // Queues are deep enough (64) that everything eventually transmits.
  EXPECT_EQ(received, 3 * kPerSender);
}

TEST_F(SharedFixture, ByteConservationOnSegment) {
  hosts[1]->udp().bind(7000, nullptr);
  auto& sock = hosts[0]->udp().bind(0, nullptr);
  for (int i = 0; i < 25; ++i) {
    sock.send_to(IpAddr(192, 168, 0, 2), 7000, 512, nullptr,
                 TrafficClass::kApplication);
  }
  sim.run();
  const auto& out = hosts[0]->nic(0).counters();
  EXPECT_EQ(segment->stats().octets_carried, out.out_octets);
  EXPECT_EQ(hosts[1]->nic(0).counters().in_octets, out.out_octets);
}

TEST_F(SharedFixture, UtilizationReflectsLoad) {
  hosts[1]->udp().bind(7000, nullptr);
  apps::CbrTraffic::Config cfg;
  cfg.rate_bps = 5e6;  // half the segment
  cfg.packet_bytes = 1000;
  cfg.dst_port = 7000;
  apps::CbrTraffic cbr(*hosts[0], IpAddr(192, 168, 0, 2), cfg);
  cbr.start();
  sim.run_for(Duration::sec(2));
  cbr.stop();
  const double u = segment->utilization(sim.now());
  EXPECT_GT(u, 0.40);
  EXPECT_LT(u, 0.70);
}

TEST_F(SharedFixture, SaturationDropsFromFiniteQueues) {
  hosts[1]->udp().bind(7000, nullptr);
  apps::CbrTraffic::Config cfg;
  cfg.rate_bps = 20e6;  // 2x the segment capacity
  cfg.packet_bytes = 1000;
  cfg.dst_port = 7000;
  apps::CbrTraffic cbr(*hosts[0], IpAddr(192, 168, 0, 2), cfg);
  cbr.start();
  sim.run_for(Duration::sec(1));
  cbr.stop();
  sim.run();
  EXPECT_GT(hosts[0]->nic(0).counters().out_drops, 0u);
}

// --- switch ---------------------------------------------------------------

class SwitchFixture : public ::testing::Test {
 protected:
  SwitchFixture() : network(sim, util::Rng(5)) {
    sw = &network.add_switch("sw");
    for (int i = 0; i < 3; ++i) {
      auto& host = network.add_host("h" + std::to_string(i));
      network.attach(host, *sw, IpAddr(10, 0, 0, std::uint8_t(i + 1)), 24,
                     100e6, Duration::us(1));
      hosts.push_back(&host);
    }
    network.auto_route();
  }
  sim::Simulator sim;
  Network network;
  Switch* sw;
  std::vector<net::Host*> hosts;
};

TEST_F(SwitchFixture, PrimedTablesForwardWithoutFlooding) {
  // auto_route() statically provisions the MAC table from the topology:
  // even the very first unicast is forwarded, never flooded.
  EXPECT_EQ(sw->mac_table_size(), 3u);
  int received = 0;
  hosts[1]->udp().bind(7000, [&](const Packet&) { ++received; });
  auto& sock = hosts[0]->udp().bind(0, nullptr);
  sock.send_to(IpAddr(10, 0, 0, 2), 7000, 100, nullptr,
               TrafficClass::kApplication);
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(sw->frames_flooded(), 0u);
  EXPECT_GE(sw->frames_forwarded(), 1u);
}

TEST(SwitchLearning, ColdTableFloodsThenLearns) {
  // Without auto_route (no provisioning) the switch behaves classically:
  // unknown unicast floods, the reply is forwarded on the learned port.
  sim::Simulator sim;
  Network network(sim, util::Rng(6));
  auto& sw = network.add_switch("sw");
  auto& h0 = network.add_host("h0");
  auto& h1 = network.add_host("h1");
  Nic& n0 = network.attach(h0, sw, IpAddr(10, 0, 0, 1), 24, 100e6);
  Nic& n1 = network.attach(h1, sw, IpAddr(10, 0, 0, 2), 24, 100e6);
  // Hand-written direct routes instead of auto_route.
  h0.routing().add(Prefix(IpAddr(10, 0, 0, 0), 24), IpAddr{}, &n0);
  h1.routing().add(Prefix(IpAddr(10, 0, 0, 0), 24), IpAddr{}, &n1);

  h1.udp().bind(7000, nullptr);
  h0.udp().bind(7001, nullptr);
  auto& s0 = h0.udp().bind(0, nullptr);
  auto& s1 = h1.udp().bind(0, nullptr);
  s0.send_to(IpAddr(10, 0, 0, 2), 7000, 100, nullptr,
             TrafficClass::kApplication);
  sim.run();
  EXPECT_EQ(sw.frames_flooded(), 1u);
  // Reply: h0's MAC was learned from the first frame.
  s1.send_to(IpAddr(10, 0, 0, 1), 7001, 100, nullptr,
             TrafficClass::kApplication);
  sim.run();
  EXPECT_EQ(sw.frames_flooded(), 1u);
  EXPECT_EQ(sw.frames_forwarded(), 1u);
}

TEST_F(SwitchFixture, ThirdPartyCannotSniffSwitchedUnicast) {
  // The paper's point: on switched media passive probes see (almost)
  // nothing. After MACs are learned, host2 sees none of host0<->host1.
  std::uint64_t tapped = 0;
  hosts[2]->nic(0).set_promiscuous(true);
  hosts[1]->udp().bind(7000, nullptr);
  hosts[0]->udp().bind(7001, nullptr);
  auto& s0 = hosts[0]->udp().bind(0, nullptr);
  auto& s1 = hosts[1]->udp().bind(0, nullptr);
  // Learn both directions first.
  s0.send_to(IpAddr(10, 0, 0, 2), 7000, 64, nullptr, TrafficClass::kOther);
  s1.send_to(IpAddr(10, 0, 0, 1), 7001, 64, nullptr, TrafficClass::kOther);
  sim.run();
  hosts[2]->nic(0).add_tap([&](const Frame&) { ++tapped; });
  for (int i = 0; i < 20; ++i) {
    s0.send_to(IpAddr(10, 0, 0, 2), 7000, 100, nullptr,
               TrafficClass::kApplication);
  }
  sim.run();
  EXPECT_EQ(tapped, 0u);
}

// --- routed topology -------------------------------------------------------

TEST(RoutedTopology, PacketsCrossRouters) {
  sim::Simulator sim;
  Network network(sim, util::Rng(7));
  auto& h1 = network.add_host("h1");
  auto& r1 = network.add_router("r1");
  auto& r2 = network.add_router("r2");
  auto& h2 = network.add_host("h2");
  network.connect(h1, IpAddr(10, 1, 0, 1), r1, IpAddr(10, 1, 0, 2), 24, 10e6);
  network.connect(r1, IpAddr(10, 2, 0, 1), r2, IpAddr(10, 2, 0, 2), 24, 10e6);
  network.connect(r2, IpAddr(10, 3, 0, 1), h2, IpAddr(10, 3, 0, 2), 24, 10e6);
  network.auto_route();

  int received = 0;
  std::uint8_t ttl_seen = 0;
  h2.udp().bind(7000, [&](const Packet& p) {
    ++received;
    ttl_seen = p.ttl;
  });
  auto& sock = h1.udp().bind(0, nullptr);
  sock.send_to(IpAddr(10, 3, 0, 2), 7000, 100, nullptr,
               TrafficClass::kApplication);
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(ttl_seen, 62);  // two router hops decrement TTL twice
  EXPECT_EQ(r1.counters().ip_forwarded, 1u);
  EXPECT_EQ(r2.counters().ip_forwarded, 1u);
}

TEST(RoutedTopology, TtlExpiryDropsPacket) {
  sim::Simulator sim;
  Network network(sim, util::Rng(7));
  auto& h1 = network.add_host("h1");
  auto& r1 = network.add_router("r1");
  auto& h2 = network.add_host("h2");
  network.connect(h1, IpAddr(10, 1, 0, 1), r1, IpAddr(10, 1, 0, 2), 24, 10e6);
  network.connect(r1, IpAddr(10, 2, 0, 1), h2, IpAddr(10, 2, 0, 2), 24, 10e6);
  network.auto_route();
  int received = 0;
  h2.udp().bind(7000, [&](const Packet&) { ++received; });
  Packet p;
  p.dst = IpAddr(10, 2, 0, 2);
  p.dst_port = 7000;
  p.payload_bytes = 10;
  p.ttl = 1;
  h1.send_packet(std::move(p));
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(r1.counters().ip_ttl_exceeded, 1u);
}

TEST(RoutedTopology, AsymmetricRoutesCanBreakOneDirection) {
  // Two disjoint router paths; h1 reaches h2 via rA, and h2's reverse route
  // is forced via rB whose link we cut: forward works, reverse does not —
  // the paper's argument against sniffing-based reachability (§4.3).
  sim::Simulator sim;
  Network network(sim, util::Rng(9));
  auto& h1 = network.add_host("h1");
  auto& h2 = network.add_host("h2");
  auto& ra = network.add_router("ra");
  auto& rb = network.add_router("rb");
  network.connect(h1, IpAddr(10, 1, 0, 1), ra, IpAddr(10, 1, 0, 2), 24, 10e6);
  network.connect(ra, IpAddr(10, 2, 0, 1), h2, IpAddr(10, 2, 0, 2), 24, 10e6);
  auto [h1b, rb1] = network.connect(h1, IpAddr(10, 3, 0, 1), rb,
                                    IpAddr(10, 3, 0, 2), 24, 10e6);
  (void)h1b;
  auto [rb2, h2b] = network.connect(rb, IpAddr(10, 4, 0, 1), h2,
                                    IpAddr(10, 4, 0, 2), 24, 10e6);
  (void)rb2;
  network.auto_route();
  // Force h2 -> h1 over rb.
  h2.routing().add(Prefix(IpAddr(10, 1, 0, 1), 32), IpAddr(10, 4, 0, 1), h2b);
  // Break the rb path.
  rb.set_up(false);

  int fwd = 0, rev = 0;
  h2.udp().bind(7000, [&](const Packet&) { ++fwd; });
  h1.udp().bind(7000, [&](const Packet&) { ++rev; });
  auto& s1 = h1.udp().bind(0, nullptr);
  auto& s2 = h2.udp().bind(0, nullptr);
  s1.send_to(IpAddr(10, 2, 0, 2), 7000, 50, nullptr, TrafficClass::kOther);
  s2.send_to(IpAddr(10, 1, 0, 1), 7000, 50, nullptr, TrafficClass::kOther);
  sim.run();
  EXPECT_EQ(fwd, 1);  // h1 -> h2 via ra still works
  EXPECT_EQ(rev, 0);  // h2 -> h1 forced through dead rb
}

TEST(Topology, DuplicateIpRejected) {
  sim::Simulator sim;
  Network network(sim, util::Rng(1));
  auto& seg = network.add_segment("lan", 10e6);
  auto& h1 = network.add_host("h1");
  auto& h2 = network.add_host("h2");
  network.attach(h1, seg, IpAddr(10, 0, 0, 1), 24);
  EXPECT_THROW(network.attach(h2, seg, IpAddr(10, 0, 0, 1), 24),
               std::logic_error);
}

TEST(Topology, FindHelpers) {
  sim::Simulator sim;
  Network network(sim, util::Rng(1));
  auto& seg = network.add_segment("lan", 10e6);
  auto& h1 = network.add_host("alpha");
  network.attach(h1, seg, IpAddr(10, 0, 0, 1), 24);
  EXPECT_EQ(network.find_host("alpha"), &h1);
  EXPECT_EQ(network.find_host("beta"), nullptr);
  EXPECT_EQ(network.host_of(IpAddr(10, 0, 0, 1)), &h1);
  EXPECT_EQ(network.host_of(IpAddr(10, 0, 0, 99)), nullptr);
  EXPECT_TRUE(network.mac_of(IpAddr(10, 0, 0, 1)).has_value());
  EXPECT_FALSE(network.mac_of(IpAddr(10, 0, 0, 99)).has_value());
}

TEST(Udp, EphemeralPortsUniqueAndRebindRejected) {
  sim::Simulator sim;
  Network network(sim, util::Rng(1));
  auto& seg = network.add_segment("lan", 10e6);
  auto& h = network.add_host("h");
  network.attach(h, seg, IpAddr(10, 0, 0, 1), 24);
  auto& s1 = h.udp().bind(0, nullptr);
  auto& s2 = h.udp().bind(0, nullptr);
  EXPECT_NE(s1.port(), s2.port());
  EXPECT_THROW(h.udp().bind(s1.port(), nullptr), std::logic_error);
  s1.close();
  EXPECT_NO_THROW(h.udp().bind(49152, nullptr));
}

TEST(Udp, NoPortCounterIncrements) {
  sim::Simulator sim;
  Network network(sim, util::Rng(1));
  auto& seg = network.add_segment("lan", 10e6);
  auto& h1 = network.add_host("h1");
  auto& h2 = network.add_host("h2");
  network.attach(h1, seg, IpAddr(10, 0, 0, 1), 24);
  network.attach(h2, seg, IpAddr(10, 0, 0, 2), 24);
  network.auto_route();
  auto& sock = h1.udp().bind(0, nullptr);
  sock.send_to(IpAddr(10, 0, 0, 2), 9999, 10, nullptr, TrafficClass::kOther);
  sim.run();
  EXPECT_EQ(h2.udp().counters().no_ports, 1u);
}

}  // namespace
}  // namespace netmon::net
