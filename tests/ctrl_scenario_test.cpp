// Closed-loop control scenarios (DESIGN.md §12), labeled `control` so CI
// can run the controlled-vs-baseline matrix as its own job:
//
//   * crash-and-restart recovery — a dual-router topology where the primary
//     gateway dies. The report-only baseline cannot recover until the fault
//     ends (the resource manager's server failover is useless: both servers
//     sit behind the same dead router, so the no-healthier hold keeps
//     position). The controlled run swaps pre-provisioned standby routes
//     within the strike bound, recovers every path, and does NOT swap back
//     when the crashed router returns — zero oscillation. Time-to-recovery
//     must be at least 2× better than baseline under both the host-crash
//     and link-flap plans.
//   * determinism — two same-seed controlled runs yield bit-identical
//     ActuationLog serializations.
//   * adaptive retuning — under application background load, the plane
//     stretches the monitor request's period until the windowed monitoring
//     share fits the budget, and the predictive restore rule keeps the
//     ladder from flapping.
//
// The controlled host-crash run also writes ctrl-actuation-log.json and
// ctrl-obs-snapshot.json (CI uploads both as artifacts).

#include <gtest/gtest.h>

#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/rtds.hpp"
#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "ctrl/control_plane.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "manager/resource_manager.hpp"
#include "net/topology.hpp"
#include "obs/intrusiveness.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace netmon::ctrl {
namespace {

using core::Metric;
using sim::Duration;

// -------------------------------------------------------------------------
// Dual-router bed: s0,s1 -- SWS -- {RA primary, RB standby} -- SWC -- c0..c2.
// auto_route points every inter-subnet path through RA (first-constructed
// router); RB only carries traffic once a standby /32 is swapped active.

constexpr int kServers = 2;
constexpr int kClients = 3;

struct DualRouterBed {
  explicit DualRouterBed(sim::Simulator& sim)
      : network(sim, util::Rng(7)) {
    net::Switch& sws = network.add_switch("sws");
    net::Switch& swc = network.add_switch("swc");
    ra = &network.add_router("ra");
    rb = &network.add_router("rb");
    network.attach(*ra, sws, net::IpAddr(10, 0, 1, 254), 24, 100e6);
    network.attach(*ra, swc, net::IpAddr(10, 0, 2, 254), 24, 100e6);
    network.attach(*rb, sws, net::IpAddr(10, 0, 1, 253), 24, 100e6);
    network.attach(*rb, swc, net::IpAddr(10, 0, 2, 253), 24, 100e6);
    for (int s = 0; s < kServers; ++s) {
      net::Host& host = network.add_host("s" + std::to_string(s));
      network.attach(host, sws,
                     net::IpAddr(10, 0, 1, static_cast<std::uint8_t>(s + 1)),
                     24, 100e6);
      servers.push_back(&host);
    }
    for (int c = 0; c < kClients; ++c) {
      net::Host& host = network.add_host("c" + std::to_string(c));
      network.attach(host, swc,
                     net::IpAddr(10, 0, 2, static_cast<std::uint8_t>(c + 1)),
                     24, 100e6);
      clients.push_back(&host);
    }
    network.auto_route();
    for (net::Host* h : servers) sinks.install(*h);
    for (net::Host* h : clients) sinks.install(*h);
    // Standby /32s through RB at both endpoints of every (server, client)
    // path — what the route-failover actuator swaps in.
    for (net::Host* s : servers) {
      for (net::Host* c : clients) {
        s->routing().add_standby(net::Prefix(c->primary_ip(), 32),
                                 net::IpAddr(10, 0, 1, 253),
                                 s->nics().front().get());
        c->routing().add_standby(net::Prefix(s->primary_ip(), 32),
                                 net::IpAddr(10, 0, 2, 253),
                                 c->nics().front().get());
      }
    }
  }

  net::Network network;
  net::Host* ra = nullptr;
  net::Host* rb = nullptr;
  std::vector<net::Host*> servers;
  std::vector<net::Host*> clients;
  core::SinkSet sinks;
};

core::HighFidelityMonitor::Config fast_monitor_config() {
  core::HighFidelityMonitor::Config cfg;
  cfg.probe.message_count = 2;
  cfg.probe.inter_send = Duration::ms(5);
  cfg.probe.result_timeout = Duration::ms(500);
  // Fast liveness assessment: one attempt, short timeout, so a dead round
  // over all six paths stays near a second.
  cfg.reach.attempts = 1;
  cfg.reach.timeout = Duration::ms(200);
  return cfg;
}

ControlConfig controlled_config() {
  ControlConfig cfg;
  cfg.enabled = true;
  cfg.route_failover = true;
  cfg.failover_strikes = 2;
  cfg.failover_cooldown = Duration::sec(2);
  cfg.probe_retuning = false;  // no meter in the failover scenarios
  cfg.priority_boost = true;
  cfg.policy.action_deadline = Duration::sec(5);
  cfg.policy.hold = Duration::sec(8);
  return cfg;
}

struct ScenarioResult {
  double ttr_s = 0.0;  // last bad sample after the fault, relative to it
  bool any_path_went_bad = false;
  bool all_paths_recovered = true;
  std::uint64_t reconfigurations = 0;
  ControlStats cstats;
  PolicyStats pstats;
  std::string actuation_log_text;
  std::string actuation_log_json;
  std::string obs_json;
  // Per-path count of applied route-failover actuations.
  std::map<std::string, int> failovers_per_path;
};

ScenarioResult run_failover_scenario(const fault::FaultPlan& plan,
                                     bool controlled, Duration fault_at,
                                     Duration run_for) {
  sim::Simulator sim;
  DualRouterBed bed(sim);
  obs::Registry registry;
  core::HighFidelityMonitor monitor(bed.network, fast_monitor_config());

  mgr::ResourceManager::Config rm_cfg;
  rm_cfg.metrics = {Metric::kReachability};
  rm_cfg.period = Duration::ms(500);
  // One strike more than the plane's failover threshold: local route repair
  // (2 bad samples) lands before the manager's server failover (3) can
  // trigger, so a controlled run never reconfigures at the server level.
  rm_cfg.strikes = 3;
  mgr::ResourceManager manager(monitor.director(), rm_cfg);

  ControlConfig ctrl_cfg = controlled_config();
  ctrl_cfg.enabled = controlled;
  ControlPlane plane(sim, bed.network, ctrl_cfg);
  plane.attach_observability(registry, "ctrl");
  plane.attach(manager);

  // Measurement tap: per-path last bad/good sample times. The controlled
  // run chains the plane behind the tap (observe_tuple is public for
  // exactly this); the baseline run records only.
  struct PathTimes {
    std::int64_t last_bad_ns = -1;
    std::int64_t last_good_ns = -1;
  };
  std::map<std::string, PathTimes> times;
  manager.set_tuple_observer([&](const std::string& app,
                                 const core::PathMetricTuple& tuple) {
    const bool bad = !tuple.value.valid ||
                     tuple.value.quality == core::SampleQuality::kStale ||
                     tuple.value.value < 0.5;
    PathTimes& t = times[tuple.path.to_string()];
    if (bad) {
      t.last_bad_ns = sim.now().nanos();
    } else {
      t.last_good_ns = sim.now().nanos();
    }
    if (controlled) plane.observe_tuple(app, tuple);
  });

  fault::FaultInjector injector(sim);
  for (const auto& link : bed.network.links()) {
    injector.register_link(link->name(), *link);
  }
  for (const auto& host : bed.network.hosts()) {
    injector.register_host(host->name(), *host);
  }
  injector.arm(plan);

  mgr::ManagedApplication app;
  app.name = "rtds";
  for (net::Host* s : bed.servers) app.server_pool.push_back(s->primary_ip());
  for (net::Host* c : bed.clients) app.client_pool.push_back(c->primary_ip());
  app.port = apps::kRtdsPort;
  manager.manage(app, bed.servers[0]->primary_ip());

  sim.run_for(run_for);

  ScenarioResult result;
  result.reconfigurations = manager.reconfigurations();
  result.cstats = plane.stats();
  result.pstats = plane.policy().stats();
  result.actuation_log_text = plane.policy().log().export_text();
  result.actuation_log_json = plane.policy().log().export_json();
  result.obs_json = registry.export_json();

  const std::int64_t fault_ns = fault_at.nanos();
  std::int64_t last_bad_after_fault = fault_ns;
  for (const auto& [path, t] : times) {
    if (t.last_bad_ns < fault_ns) continue;  // never went bad post-fault
    result.any_path_went_bad = true;
    if (t.last_bad_ns > last_bad_after_fault) {
      last_bad_after_fault = t.last_bad_ns;
    }
    if (t.last_good_ns <= t.last_bad_ns) result.all_paths_recovered = false;
  }
  result.ttr_s = static_cast<double>(last_bad_after_fault - fault_ns) / 1e9;

  for (const auto& record : plane.policy().log().records()) {
    if (record.rule == "route-failover" &&
        record.outcome == ActuationOutcome::kApplied) {
      ++result.failovers_per_path[record.target];
    }
  }
  return result;
}

void assert_zero_oscillation(const ScenarioResult& r) {
  // Oscillation would show as rollbacks (unverified swaps undone), repeat
  // swaps of one path, or resource-manager server ping-pong. None allowed.
  EXPECT_EQ(r.pstats.rolled_back, 0u);
  EXPECT_EQ(r.reconfigurations, 0u);
  EXPECT_EQ(r.cstats.failovers_applied, r.cstats.failovers_verified);
  for (const auto& [path, count] : r.failovers_per_path) {
    EXPECT_LE(count, 1) << path << " failed over " << count << " times";
  }
}

struct FailoverPlan {
  const char* name;
  fault::FaultPlan plan;
  Duration fault_at;
  Duration fault_clears_at;  // baseline can only recover after this
  Duration run_for;
};

std::vector<FailoverPlan> failover_plans() {
  std::vector<FailoverPlan> out;

  fault::FaultPlan crash;
  crash.seed = 33;
  crash.host_crash(Duration::sec(4), "ra");
  crash.host_restart(Duration::sec(24), "ra");
  out.push_back(FailoverPlan{"host-crash", crash, Duration::sec(4),
                             Duration::sec(24), Duration::sec(40)});

  fault::FaultPlan flap;
  flap.seed = 11;
  flap.link_flap(Duration::sec(4), "ra<->sws", 1, Duration::sec(15),
                 Duration::sec(1));
  out.push_back(FailoverPlan{"link-flap", flap, Duration::sec(4),
                             Duration::sec(19), Duration::sec(35)});

  return out;
}

TEST(ControlScenario, ControlledRecoveryBeatsBaselineTwofold) {
  for (const FailoverPlan& fp : failover_plans()) {
    SCOPED_TRACE(fp.name);
    const ScenarioResult baseline =
        run_failover_scenario(fp.plan, false, fp.fault_at, fp.run_for);
    const ScenarioResult controlled =
        run_failover_scenario(fp.plan, true, fp.fault_at, fp.run_for);

    // Both runs saw the outage; both eventually recovered every path.
    ASSERT_TRUE(baseline.any_path_went_bad);
    ASSERT_TRUE(controlled.any_path_went_bad);
    EXPECT_TRUE(baseline.all_paths_recovered);
    EXPECT_TRUE(controlled.all_paths_recovered);

    // The baseline is report-only: both servers sit behind the dead
    // router, so no amount of server-level failover restores service (the
    // manager may thrash between equally-dead pool members — that skew-
    // driven flip is documented ResourceManager behavior) and recovery
    // waits for the fault itself to clear.
    EXPECT_GE(baseline.ttr_s,
              (fp.fault_clears_at - fp.fault_at).nanos() / 1e9 * 0.9);
    EXPECT_EQ(baseline.cstats.failovers_applied, 0u);

    // The controlled run swapped every path to the standby router and
    // verified each swap; TTR at least 2× better (in practice far more).
    EXPECT_EQ(controlled.cstats.failovers_applied,
              static_cast<std::uint64_t>(kServers * kClients));
    EXPECT_GT(controlled.ttr_s, 0.0);
    EXPECT_LE(controlled.ttr_s * 2.0, baseline.ttr_s)
        << "controlled TTR " << controlled.ttr_s << " s vs baseline "
        << baseline.ttr_s << " s";
    assert_zero_oscillation(controlled);
    std::cout << "[ctrl] " << fp.name << ": baseline TTR " << baseline.ttr_s
              << " s (" << baseline.reconfigurations
              << " server flips), controlled TTR " << controlled.ttr_s
              << " s (" << controlled.reconfigurations << " flips, "
              << controlled.cstats.failovers_applied << " route swaps)\n";
  }
}

TEST(ControlScenario, CrashAndRestartActuationLogIsDeterministic) {
  const FailoverPlan fp = failover_plans()[0];  // host-crash + restart
  const ScenarioResult a =
      run_failover_scenario(fp.plan, true, fp.fault_at, fp.run_for);
  const ScenarioResult b =
      run_failover_scenario(fp.plan, true, fp.fault_at, fp.run_for);

  ASSERT_FALSE(a.actuation_log_text.empty());
  // Same seed ⇒ bit-identical actuation history, both serializations.
  EXPECT_EQ(a.actuation_log_text, b.actuation_log_text);
  EXPECT_EQ(a.actuation_log_json, b.actuation_log_json);
  EXPECT_EQ(a.ttr_s, b.ttr_s);
  assert_zero_oscillation(a);

  // CI artifacts: the actuation history and the full telemetry snapshot.
  std::ofstream log_out("ctrl-actuation-log.json");
  log_out << a.actuation_log_json;
  std::ofstream obs_out("ctrl-obs-snapshot.json");
  obs_out << a.obs_json;
}

// -------------------------------------------------------------------------
// Adaptive probe retuning under application load.

TEST(ControlScenario, RetuningKeepsMonitoringShareUnderBudget) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = kServers;
  options.clients = 4;
  apps::Testbed bed(sim, options);
  obs::Registry registry;

  core::HighFidelityMonitor::Config mon_cfg;
  mon_cfg.probe.message_length = 8192;
  mon_cfg.probe.message_count = 4;
  mon_cfg.probe.inter_send = Duration::ms(5);
  mon_cfg.probe.result_timeout = Duration::sec(1);
  core::HighFidelityMonitor monitor(bed.network(), mon_cfg);
  obs::IntrusivenessMeter meter(sim, bed.network(), registry,
                                "net.intrusiveness", Duration::ms(100));

  // Steady application load so the share has a denominator to defend.
  apps::CbrTraffic::Config cbr_cfg;
  cbr_cfg.rate_bps = 2e6;
  cbr_cfg.traffic_class = net::TrafficClass::kApplication;
  apps::CbrTraffic cbr(bed.server(0), bed.client_ip(0), cbr_cfg);
  cbr.start();

  mgr::ResourceManager::Config rm_cfg;
  rm_cfg.metrics = {Metric::kThroughput};
  // Periodic mode so the request period actually paces the rounds
  // (continuous mode cycles back-to-back regardless of period).
  rm_cfg.mode = core::MonitorRequest::Mode::kPeriodic;
  rm_cfg.period = Duration::ms(250);  // deliberately too eager
  mgr::ResourceManager manager(monitor.director(), rm_cfg);

  ControlConfig ctrl_cfg;
  ctrl_cfg.enabled = true;
  ctrl_cfg.route_failover = false;
  ctrl_cfg.priority_boost = false;
  ctrl_cfg.probe_retuning = true;
  ctrl_cfg.tick = Duration::ms(200);
  ctrl_cfg.share_budget = 0.5;
  ctrl_cfg.stretch_factor = 2.0;
  ctrl_cfg.max_stretch_levels = 3;
  ctrl_cfg.retune_cooldown = Duration::sec(1);
  ControlPlane plane(sim, bed.network(), ctrl_cfg);
  plane.set_meter(meter);
  plane.attach(manager);

  mgr::ManagedApplication app;
  app.name = "rtds";
  for (int s = 0; s < kServers; ++s) {
    app.server_pool.push_back(bed.server_ip(s));
  }
  for (int c = 0; c < 4; ++c) app.client_pool.push_back(bed.client_ip(c));
  app.port = apps::kRtdsPort;
  app.requirements.require_reachability = false;
  app.requirements.min_throughput_bps = 1.0;  // any measured rate passes
  manager.manage(app, bed.server_ip(0));
  const auto request = manager.request_id("rtds");

  sim.run_for(Duration::sec(30));

  // The plane stretched the request's period until the windowed share fit
  // the budget, and the ladder settled (predictive restore: no flapping).
  EXPECT_GE(plane.stats().stretches, 1u);
  EXPECT_GE(plane.stretch_level(request), 1);
  EXPECT_GT(monitor.director().period_of(request)->nanos(),
            rm_cfg.period.nanos());
  // The byte-weighted share over the last decision window — the evidence
  // the controller acts on — fits the budget at the settled level.
  EXPECT_LE(plane.window_share(), ctrl_cfg.share_budget * 1.1)
      << "windowed monitoring share " << plane.window_share()
      << " still above budget " << ctrl_cfg.share_budget;
  // The ladder converged: at most one predictive restore (correcting an
  // overshoot past the level that fits), not a stretch/restore oscillation.
  EXPECT_LE(plane.stats().restores, 1u)
      << plane.policy().log().export_text();
  EXPECT_EQ(plane.stats().stretches - plane.stats().restores,
            static_cast<std::uint64_t>(plane.stretch_level(request)));
  EXPECT_EQ(plane.policy().stats().rolled_back, 0u);
  // Monitoring kept flowing at the stretched cadence.
  EXPECT_GT(manager.tuples_consumed(), 0u);
}

}  // namespace
}  // namespace netmon::ctrl
