#include <gtest/gtest.h>

#include "apps/rtds.hpp"
#include "apps/testbed.hpp"
#include "apps/traffic.hpp"

namespace netmon::apps {
namespace {

using sim::Duration;

class RtdsFixture : public ::testing::Test {
 protected:
  RtdsFixture() {
    TestbedOptions options;
    options.servers = 2;
    options.clients = 2;
    bed = std::make_unique<Testbed>(sim, options);
  }
  sim::Simulator sim;
  std::unique_ptr<Testbed> bed;
};

TEST_F(RtdsFixture, ClientsReceiveTracksAtServerPeriod) {
  RtdsServer server(bed->server(0), RtdsServer::Config{});
  RtdsClient c1(bed->client(0), RtdsClient::Config{});
  RtdsClient c2(bed->client(1), RtdsClient::Config{});
  server.start();
  c1.connect(bed->server_ip(0));
  c2.connect(bed->server_ip(0));
  sim.run_for(Duration::sec(3));
  // ~33 tracks/second for ~3 seconds.
  EXPECT_GT(c1.tracks_received(), 80u);
  EXPECT_GT(c2.tracks_received(), 80u);
  EXPECT_EQ(server.subscriber_count(), 2u);
  // Mean inter-arrival matches the 30 ms period.
  EXPECT_NEAR(c1.interarrival_seconds().mean(), 0.030, 0.003);
  EXPECT_EQ(c1.gaps(), 0u);
}

TEST_F(RtdsFixture, StoppedServerCausesGap) {
  RtdsServer server(bed->server(0), RtdsServer::Config{});
  RtdsClient client(bed->client(0), RtdsClient::Config{});
  server.start();
  client.connect(bed->server_ip(0));
  sim.run_for(Duration::sec(1));
  server.stop();
  sim.run_for(Duration::sec(1));
  server.start();
  sim.run_for(Duration::sec(1));
  EXPECT_GE(client.gaps(), 1u);
  EXPECT_GT(client.longest_gap().to_seconds(), 0.9);
}

TEST_F(RtdsFixture, FailoverResumesTrackFlow) {
  RtdsServer s0(bed->server(0), RtdsServer::Config{});
  RtdsServer s1(bed->server(1), RtdsServer::Config{});
  RtdsClient client(bed->client(0), RtdsClient::Config{});
  s0.start();
  client.connect(bed->server_ip(0));
  sim.run_for(Duration::sec(1));
  const auto before = client.tracks_received();
  // Fail over: stop s0, move client to s1.
  s0.stop();
  s1.start();
  client.connect(bed->server_ip(1));
  sim.run_for(Duration::sec(1));
  EXPECT_GT(client.tracks_received(), before + 20);
  EXPECT_EQ(client.server(), bed->server_ip(1));
}

TEST_F(RtdsFixture, UnsubscribeStopsDelivery) {
  RtdsServer server(bed->server(0), RtdsServer::Config{});
  RtdsClient client(bed->client(0), RtdsClient::Config{});
  server.start();
  client.connect(bed->server_ip(0));
  sim.run_for(Duration::sec(1));
  client.disconnect();
  sim.run_for(Duration::ms(200));
  const auto count = client.tracks_received();
  sim.run_for(Duration::sec(1));
  EXPECT_LE(client.tracks_received(), count + 1);
  EXPECT_EQ(server.subscriber_count(), 0u);
}

TEST_F(RtdsFixture, StaleSubscribersExpire) {
  RtdsServer::Config cfg;
  cfg.subscriber_ttl_periods = 10;  // 300 ms at P=30ms
  RtdsServer server(bed->server(0), cfg);
  RtdsClient::Config client_cfg;
  client_cfg.resubscribe_interval = Duration::sec(60);  // effectively never
  RtdsClient client(bed->client(0), client_cfg);
  server.start();
  client.connect(bed->server_ip(0));
  sim.run_for(Duration::sec(2));
  EXPECT_EQ(server.subscriber_count(), 0u);
}

TEST_F(RtdsFixture, ServerLoadMatchesPaperFormula) {
  // One server, C clients: offered application load is C*(L/P) bits/s —
  // the quantity the paper's overhead analysis (§5.1.3) builds on.
  RtdsServer server(bed->server(0), RtdsServer::Config{});
  RtdsClient c1(bed->client(0), RtdsClient::Config{});
  RtdsClient c2(bed->client(1), RtdsClient::Config{});
  server.start();
  c1.connect(bed->server_ip(0));
  c2.connect(bed->server_ip(0));
  sim.run_for(Duration::sec(5));
  const double expected_msgs = 2.0 * 5.0 / 0.030;
  EXPECT_NEAR(static_cast<double>(server.messages_sent()), expected_msgs,
              expected_msgs * 0.05);
}

TEST(Traffic, CbrHitsConfiguredRate) {
  sim::Simulator sim;
  SharedLanOptions options;
  options.hosts = 2;
  options.add_probe_host = false;
  SharedLanTestbed bed(sim, options);
  TrafficSink sink(bed.host(1));
  CbrTraffic::Config cfg;
  cfg.rate_bps = 1e6;
  cfg.packet_bytes = 500;
  CbrTraffic cbr(bed.host(0), bed.host_ip(1), cfg);
  cbr.start();
  sim.run_for(Duration::sec(4));
  cbr.stop();
  const double rate = static_cast<double>(sink.bytes()) * 8.0 / 4.0;
  EXPECT_NEAR(rate, 1e6, 0.05e6);
}

TEST(Traffic, OnOffAlternatesAndDeliversBursts) {
  sim::Simulator sim;
  SharedLanOptions options;
  options.hosts = 2;
  options.add_probe_host = false;
  SharedLanTestbed bed(sim, options);
  TrafficSink sink(bed.host(1));
  OnOffTraffic::Config cfg;
  cfg.rate_bps = 4e6;
  cfg.mean_on = Duration::ms(100);
  cfg.mean_off = Duration::ms(100);
  OnOffTraffic onoff(bed.host(0), bed.host_ip(1), cfg, util::Rng(17));
  onoff.start();
  sim.run_for(Duration::sec(5));
  onoff.stop();
  // Duty cycle ~50%: average rate should land well inside (0.2, 0.8)x rate.
  const double rate = static_cast<double>(sink.bytes()) * 8.0 / 5.0;
  EXPECT_GT(rate, 0.2 * cfg.rate_bps);
  EXPECT_LT(rate, 0.8 * cfg.rate_bps);
  EXPECT_GT(onoff.packets_sent(), 0u);
}

TEST(Traffic, StopHaltsSending) {
  sim::Simulator sim;
  SharedLanOptions options;
  options.hosts = 2;
  options.add_probe_host = false;
  SharedLanTestbed bed(sim, options);
  TrafficSink sink(bed.host(1));
  CbrTraffic::Config cfg;
  cfg.rate_bps = 1e6;
  CbrTraffic cbr(bed.host(0), bed.host_ip(1), cfg);
  cbr.start();
  sim.run_for(Duration::sec(1));
  cbr.stop();
  const auto sent = cbr.packets_sent();
  sim.run_for(Duration::sec(1));
  EXPECT_EQ(cbr.packets_sent(), sent);
}

TEST(TestbedBuilder, BuildsRequestedShape) {
  sim::Simulator sim;
  TestbedOptions options;
  options.servers = 3;
  options.clients = 9;
  Testbed bed(sim, options);
  EXPECT_EQ(bed.server_count(), 3);
  EXPECT_EQ(bed.client_count(), 9);
  const auto matrix = bed.full_matrix({core::Metric::kThroughput});
  EXPECT_EQ(matrix.size(), 27u);  // the paper's C*S = 27 paths
  // Every host pair can talk.
  int received = 0;
  bed.client(8).udp().bind(7000, [&](const net::Packet&) { ++received; });
  auto& sock = bed.server(2).udp().bind(0, nullptr);
  sock.send_to(bed.client_ip(8), 7000, 100, nullptr,
               net::TrafficClass::kApplication);
  sim.run();
  EXPECT_EQ(received, 1);
}

TEST(TestbedBuilder, ClockNoiseIsSeededAndBounded) {
  sim::Simulator sim1, sim2;
  TestbedOptions options;
  options.seed = 123;
  options.clocks.offset_spread = Duration::ms(10);
  Testbed bed1(sim1, options);
  Testbed bed2(sim2, options);
  for (int i = 0; i < bed1.server_count(); ++i) {
    const auto o1 = bed1.server(i).clock().configured_offset();
    const auto o2 = bed2.server(i).clock().configured_offset();
    EXPECT_EQ(o1.nanos(), o2.nanos());  // reproducible
    EXPECT_LE(std::abs(o1.nanos()), Duration::ms(10).nanos());
  }
}

}  // namespace
}  // namespace netmon::apps
