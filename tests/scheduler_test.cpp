// Property-based tests for the budgeted multi-lane scheduler (DESIGN.md
// §11): under seeded random workloads, topologies, fault plans, and
// priority mixes the scheduler must (1) keep the aggregate offered — and
// metered — load within the budget B, (2) keep in-flight probes
// link-disjoint, (3) admit every entry within the starvation bound, and
// (4) produce an identical admission trace for an identical seed. The
// single-lane default configuration must stay plain FIFO — the paper's
// serial test sequencer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "apps/fabric.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "core/lane_scheduler.hpp"
#include "core/sequencer.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "nttcp/nttcp.hpp"
#include "obs/intrusiveness.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace netmon {
namespace {

using core::AdmissionRecord;
using core::LaneScheduler;
using core::LinkKey;
using core::ProbeClass;
using core::ProbeProfile;
using core::SchedulerConfig;
using core::TestSequencer;
using sim::Duration;

// -------------------------------------------------------------------------
// Randomized synthetic workloads driven on a simulator.

struct Workload {
  SchedulerConfig config;
  int tasks = 200;
  std::uint64_t seed = 1;
  int link_pool = 12;      // distinct LinkKeys footprints draw from
  double max_offered = 0;  // per-probe offered load (0: no declared load)
  bool mixed_priorities = false;
};

struct WorkloadRun {
  std::vector<AdmissionRecord> trace;
  double max_committed_bps = 0.0;
  std::uint64_t disjoint_violations = 0;
  bool drained = false;
};

WorkloadRun run_workload(const Workload& w) {
  sim::Simulator sim;
  LaneScheduler sched(w.config);
  sched.set_clock([&sim] { return sim.now().nanos(); });
  sched.record_admissions(static_cast<std::size_t>(w.tasks) + 1);
  util::Rng rng(w.seed);

  WorkloadRun run;
  std::unordered_set<LinkKey> live_links;  // test-side view of in-flight

  for (int i = 0; i < w.tasks; ++i) {
    ProbeProfile profile;
    profile.tag = static_cast<std::uint64_t>(i);
    if (w.mixed_priorities) {
      profile.priority = static_cast<ProbeClass>(rng.uniform_int(0, 2));
    }
    if (w.max_offered > 0) {
      profile.offered_bps = rng.uniform(0.1, 1.0) * w.max_offered;
    }
    if (w.config.link_disjoint) {
      const int footprint = static_cast<int>(rng.uniform_int(1, 3));
      std::unordered_set<LinkKey> keys;
      while (static_cast<int>(keys.size()) < footprint) {
        keys.insert(static_cast<LinkKey>(
            rng.uniform_int(1, w.link_pool)));
      }
      profile.footprint.assign(keys.begin(), keys.end());
    }
    const auto enqueue_at = Duration::ms(rng.uniform_int(0, 500));
    const auto hold_for = Duration::ms(rng.uniform_int(1, 80));
    const auto footprint = profile.footprint;
    sim.schedule_in(enqueue_at, [&sim, &sched, &run, &live_links, profile,
                                 footprint, hold_for] {
      sched.enqueue(
          [&sim, &sched, &run, &live_links, footprint,
           hold_for](LaneScheduler::Done done) {
            run.max_committed_bps =
                std::max(run.max_committed_bps, sched.committed_bps());
            for (const LinkKey key : footprint) {
              if (!live_links.insert(key).second) ++run.disjoint_violations;
            }
            sim.schedule_in(hold_for, [&live_links, footprint,
                                       done = std::move(done)] {
              for (const LinkKey key : footprint) live_links.erase(key);
              done();
            });
          },
          profile);
    });
  }

  sim.run_for(Duration::sec(3600));
  sched.check_consistency();
  run.drained = sched.idle() && sched.completed() ==
                                    static_cast<std::uint64_t>(w.tasks);
  run.trace = sched.admissions();
  return run;
}

ProbeProfile tagged(ProbeClass priority, std::uint64_t tag) {
  ProbeProfile p;
  p.priority = priority;
  p.tag = tag;
  return p;
}

bool traces_equal(const std::vector<AdmissionRecord>& a,
                  const std::vector<AdmissionRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].admit_seq != b[i].admit_seq || a[i].at_ns != b[i].at_ns ||
        a[i].entry_seq != b[i].entry_seq || a[i].tag != b[i].tag ||
        a[i].priority != b[i].priority ||
        a[i].offered_bps != b[i].offered_bps ||
        a[i].in_flight_after != b[i].in_flight_after) {
      return false;
    }
  }
  return true;
}

TEST(LaneScheduler, SingleLaneDefaultConfigIsFifo) {
  Workload w;
  w.config = SchedulerConfig{};  // lanes = 1, no gates: the paper's sequencer
  w.tasks = 120;
  const WorkloadRun run = run_workload(w);
  ASSERT_TRUE(run.drained);
  ASSERT_EQ(run.trace.size(), 120u);
  for (std::size_t i = 0; i < run.trace.size(); ++i) {
    // Admission strictly in enqueue order, one at a time.
    EXPECT_EQ(run.trace[i].entry_seq, i);
    EXPECT_EQ(run.trace[i].in_flight_after, 1u);
  }
}

TEST(LaneScheduler, TestSequencerIsTheSingleLaneSpecialCase) {
  // The shim and an explicitly default-configured scheduler must make the
  // same admissions at the same times for the same workload.
  auto drive = [](LaneScheduler& sched) {
    sim::Simulator sim;
    sched.set_clock([&sim] { return sim.now().nanos(); });
    sched.record_admissions(64);
    util::Rng rng(7);
    for (int i = 0; i < 40; ++i) {
      const auto at = Duration::ms(rng.uniform_int(0, 100));
      const auto hold = Duration::ms(rng.uniform_int(1, 30));
      sim.schedule_in(at, [&sim, &sched, hold, i] {
        ProbeProfile p;
        p.tag = static_cast<std::uint64_t>(i);
        sched.enqueue(
            [&sim, hold](LaneScheduler::Done done) {
              sim.schedule_in(hold, [done = std::move(done)] { done(); });
            },
            p);
      });
    }
    sim.run_for(Duration::sec(60));
    sched.check_consistency();
    return sched.admissions();
  };
  TestSequencer classic(1);
  LaneScheduler general{SchedulerConfig{}};
  const auto a = drive(classic);
  const auto b = drive(general);
  ASSERT_EQ(a.size(), 40u);
  EXPECT_TRUE(traces_equal(a, b));
}

TEST(LaneScheduler, CommittedLoadNeverExceedsBudget) {
  for (const std::uint64_t seed : {1ull, 17ull, 99ull}) {
    SCOPED_TRACE(seed);
    Workload w;
    w.config.lanes = 6;
    w.config.budget_bps = 10e6;
    w.seed = seed;
    w.max_offered = 4e6;  // every probe fits the budget alone
    w.mixed_priorities = true;
    const WorkloadRun run = run_workload(w);
    ASSERT_TRUE(run.drained);
    EXPECT_LE(run.max_committed_bps, w.config.budget_bps * (1.0 + 1e-6));
    EXPECT_GT(run.max_committed_bps, 0.0);
  }
}

TEST(LaneScheduler, InFlightProbesAreLinkDisjoint) {
  for (const std::uint64_t seed : {3ull, 21ull, 77ull}) {
    SCOPED_TRACE(seed);
    Workload w;
    w.config.lanes = 8;
    w.config.link_disjoint = true;
    w.seed = seed;
    w.link_pool = 10;  // small pool forces contention
    w.mixed_priorities = true;
    const WorkloadRun run = run_workload(w);
    ASSERT_TRUE(run.drained);
    EXPECT_EQ(run.disjoint_violations, 0u);
  }
}

TEST(LaneScheduler, SameSeedProducesIdenticalAdmissionTrace) {
  for (const std::uint64_t seed : {5ull, 42ull, 1234ull}) {
    SCOPED_TRACE(seed);
    Workload w;
    w.config.lanes = 4;
    w.config.budget_bps = 8e6;
    w.config.link_disjoint = true;
    w.config.starvation_limit_ns = Duration::sec(5).nanos();
    w.seed = seed;
    w.max_offered = 3e6;
    w.mixed_priorities = true;
    const WorkloadRun first = run_workload(w);
    const WorkloadRun second = run_workload(w);
    ASSERT_TRUE(first.drained);
    ASSERT_FALSE(first.trace.empty());
    EXPECT_TRUE(traces_equal(first.trace, second.trace));
  }
}

TEST(LaneScheduler, PriorityClassesRankUnderContention) {
  sim::Simulator sim;
  LaneScheduler sched{SchedulerConfig{.lanes = 1}};
  sched.set_clock([&sim] { return sim.now().nanos(); });
  sched.record_admissions(8);
  std::vector<LaneScheduler::Done> pending;
  auto hold = [&pending](LaneScheduler::Done done) {
    pending.push_back(std::move(done));
  };
  sched.enqueue(hold, tagged(ProbeClass::kNormal, 0));  // admitted at once
  sched.enqueue(hold, tagged(ProbeClass::kBackground, 1));
  sched.enqueue(hold, tagged(ProbeClass::kNormal, 2));
  sched.enqueue(hold, tagged(ProbeClass::kCritical, 3));
  while (!pending.empty()) {
    auto done = std::move(pending.back());
    pending.pop_back();
    done();
  }
  const auto& trace = sched.admissions();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[1].tag, 3u);  // critical outranks...
  EXPECT_EQ(trace[2].tag, 2u);  // ...normal outranks...
  EXPECT_EQ(trace[3].tag, 1u);  // ...background
  EXPECT_GE(sched.scheduler_stats().priority_inversions, 2u);
  sched.check_consistency();
}

TEST(LaneScheduler, StarvationBoundHoldsUnderCriticalPressure) {
  sim::Simulator sim;
  SchedulerConfig config;
  config.lanes = 1;
  config.aging_quantum_ns = Duration::ms(250).nanos();
  config.starvation_limit_ns = Duration::sec(2).nanos();
  LaneScheduler sched(config);
  sched.set_clock([&sim] { return sim.now().nanos(); });
  sched.record_admissions(512);

  // Sustained critical pressure: five critical probes always queued, each
  // holding the lane 50 ms; five background probes enqueued at t=0 compete.
  constexpr auto kHold = Duration::ms(50);
  int critical_left = 200;
  std::function<void()> feed_critical = [&] {
    if (critical_left-- <= 0) return;
    sched.enqueue(
        [&sim, &feed_critical, kHold](LaneScheduler::Done done) {
          sim.schedule_in(kHold, [&feed_critical, done = std::move(done)] {
            done();
            feed_critical();
          });
        },
        tagged(ProbeClass::kCritical, 999));
  };
  for (int i = 0; i < 5; ++i) feed_critical();
  for (int i = 0; i < 5; ++i) {
    sched.enqueue(
        [&sim, kHold](LaneScheduler::Done done) {
          sim.schedule_in(kHold, [done = std::move(done)] { done(); });
        },
        tagged(ProbeClass::kBackground, static_cast<std::uint64_t>(i)));
  }
  sim.run_for(Duration::sec(60));
  sched.check_consistency();

  // Every background probe was admitted within the starvation limit plus
  // the serial drain of the starving cohort: all five hit the limit
  // together, starving entries are served oldest-first, and an in-flight
  // probe cannot be preempted — so the last one waits up to
  // limit + 5·hold (plus one hold of slack for phase alignment).
  const std::int64_t bound_ns =
      config.starvation_limit_ns + 6 * kHold.nanos();
  int background_admitted = 0;
  for (const AdmissionRecord& r : sched.admissions()) {
    if (r.priority != ProbeClass::kBackground) continue;
    ++background_admitted;
    EXPECT_LE(r.at_ns, bound_ns) << "background tag " << r.tag;
  }
  EXPECT_EQ(background_admitted, 5);
  EXPECT_GT(sched.scheduler_stats().starvation_picks, 0u);
}

// -------------------------------------------------------------------------
// Topology-derived footprints: the generated fabric must expose genuinely
// link-disjoint path sets for the scheduler to exploit.

apps::FabricOptions small_fabric() {
  apps::FabricOptions options;
  options.spines = 2;
  options.client_edges = 2;
  options.clients_per_edge = 3;
  options.server_edges = 2;
  options.servers_per_edge = 2;
  return options;
}

TEST(FabricFootprints, StandbyMatrixProvisionsSwappableAlternateRoutes) {
  sim::Simulator sim;
  apps::FabricTestbed bed(sim, small_fabric());
  const auto options = small_fabric();
  const std::size_t servers = static_cast<std::size_t>(options.server_edges) *
                              options.servers_per_edge;
  const std::size_t clients = static_cast<std::size_t>(options.client_edges) *
                              options.clients_per_edge;
  EXPECT_EQ(bed.provision_standby_matrix(), servers * clients);

  // Each endpoint holds a standby /32 toward its peer, invisible until
  // swapped; the swap is its own inverse (control-plane failover contract).
  net::Host& s0 = bed.server(0);
  net::Host& c0 = bed.client(0);
  const net::Prefix to_client(c0.primary_ip(), 32);
  const net::Prefix to_server(s0.primary_ip(), 32);
  ASSERT_TRUE(s0.routing().has_standby(to_client));
  ASSERT_TRUE(c0.routing().has_standby(to_server));
  const auto primary = s0.routing().lookup(c0.primary_ip());
  ASSERT_TRUE(primary.has_value());
  ASSERT_TRUE(s0.routing().swap_standby(to_client));
  const auto standby = s0.routing().lookup(c0.primary_ip());
  ASSERT_TRUE(standby.has_value());
  EXPECT_NE(primary->gateway, standby->gateway);
  ASSERT_TRUE(s0.routing().swap_standby(to_client));
  EXPECT_EQ(s0.routing().lookup(c0.primary_ip())->gateway, primary->gateway);
}

TEST(FabricFootprints, RouteMediaSeparatesSpinesAndSharesLeafLinks) {
  sim::Simulator sim;
  apps::FabricTestbed bed(sim, small_fabric());
  auto media_between = [&bed](int server, int client) {
    const auto path = bed.path(server, client);
    return bed.network().route_media(path.source().host,
                                     path.destination().host);
  };
  // client edge 0 -> spine0, client edge 1 -> spine1: reverse direction of
  // the probe (client->server leg here, since Path is server<-...->client)
  // differs per edge; same server from clients on different edges shares
  // only the server's own access link.
  const auto a = media_between(0, 0);   // client 0 (edge 0) -> server 0
  const auto b = media_between(0, 3);   // client 3 (edge 1) -> server 0
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  // Both reach the same server, so the footprints intersect (the server
  // access link at least), but the client-side media differ.
  std::size_t shared = 0;
  for (const net::Medium* m : a) {
    for (const net::Medium* n : b) {
      if (m == n) ++shared;
    }
  }
  EXPECT_GT(shared, 0u);
  EXPECT_LT(shared, a.size());

  // Different servers on different edges from clients on different edges:
  // fully disjoint forward routes.
  const auto c = media_between(0, 0);  // server edge 0 via client edge 0
  const auto d = media_between(2, 3);  // server edge 1 via client edge 1
  for (const net::Medium* m : c) {
    for (const net::Medium* n : d) {
      EXPECT_NE(m, n);
    }
  }
}

// -------------------------------------------------------------------------
// End-to-end property: a budgeted monitor on a seeded random fabric under a
// fault plan keeps the metered monitoring peak within B, exercises the
// admission gates, and replays the same admission trace for the same seed.

struct FabricRun {
  std::vector<AdmissionRecord> trace;
  double metered_peak_bps = 0.0;
  core::SchedulerStats stats;
  std::uint64_t tuples = 0;
};

FabricRun run_budgeted_fabric(std::uint64_t seed, double budget_bps,
                              const nttcp::NttcpConfig& probe) {
  sim::Simulator sim;
  apps::FabricOptions options = small_fabric();
  options.seed = seed;
  apps::FabricTestbed bed(sim, options);

  obs::Registry registry;
  core::HighFidelityMonitor::Config cfg;
  cfg.probe = probe;
  cfg.scheduling.lanes = 3;
  cfg.scheduling.budget_bps = budget_bps;
  cfg.scheduling.link_disjoint = true;
  cfg.scheduling.starvation_limit_ns = Duration::sec(10).nanos();
  cfg.supervision.deadline = Duration::ms(1500);
  core::HighFidelityMonitor monitor(bed.network(), cfg);
  monitor.director().sequencer().record_admissions(4096);
  obs::IntrusivenessMeter meter(sim, bed.network(), registry,
                                "net.intrusiveness", Duration::ms(100));

  // A seeded fault plan: flap one client access link mid-run.
  fault::FaultInjector injector(sim);
  for (const auto& link : bed.network().links()) {
    injector.register_link(link->name(), *link);
  }
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.link_flap(Duration::sec(2), "client1<->cedge0", 2, Duration::ms(200),
                 Duration::ms(500));
  injector.arm(plan);

  // Mixed priorities across the matrix.
  core::MonitorRequest request;
  request.paths = bed.full_matrix({core::Metric::kThroughput});
  for (std::size_t i = 0; i < request.paths.size(); ++i) {
    request.paths[i].priority = static_cast<ProbeClass>(i % 3);
  }
  request.mode = core::MonitorRequest::Mode::kContinuous;

  FabricRun result;
  monitor.director().submit(
      request, [&](const core::PathMetricTuple&) { ++result.tuples; });
  sim.run_for(Duration::sec(12));

  monitor.director().sequencer().check_consistency();
  result.trace = monitor.director().sequencer().admissions();
  result.metered_peak_bps = meter.peak_bps(net::TrafficClass::kMonitoring);
  result.stats = monitor.director().sequencer().scheduler_stats();
  return result;
}

TEST(FabricScheduling, MeteredPeakStaysUnderBudgetAndTraceIsDeterministic) {
  nttcp::NttcpConfig probe;
  probe.message_length = 8192;
  probe.inter_send = Duration::ms(30);
  probe.message_count = 4;
  probe.result_timeout = Duration::sec(1);
  // Every fabric probe crosses one spine router (2 L3 hops), so its
  // declared load in meter units is 2·L/P. Budget two concurrent probes
  // but not three: the budget gate must bind.
  const double budget = 2.1 * 2.0 * nttcp::NttcpProbe::peak_load_bps(probe);

  const FabricRun first = run_budgeted_fabric(11, budget, probe);
  ASSERT_GT(first.tuples, 0u);
  ASSERT_FALSE(first.trace.empty());

  // (1) metered peak <= B: declared loads are honest wire peaks, so the
  // admitted sum bounds what the meter can see up to tick quantization — a
  // 100 ms tick can catch ⌈tick/P⌉+1 = 4 messages of a 30 ms-period probe,
  // 4/3.33 ≈ 1.2× the declared rate — plus the small result report. 25%
  // slack covers both.
  EXPECT_GT(first.metered_peak_bps, 0.0);
  EXPECT_LE(first.metered_peak_bps, budget * 1.25)
      << "metered monitoring peak exceeds the intrusiveness budget";

  // The gates actually worked for their living.
  EXPECT_GT(first.stats.deferred_budget + first.stats.deferred_disjoint, 0u);

  // (4) same seed => identical admission trace.
  const FabricRun second = run_budgeted_fabric(11, budget, probe);
  EXPECT_TRUE(traces_equal(first.trace, second.trace));
}

// -------------------------------------------------------------------------
// Incremental wake-up vs the ranking policy (DESIGN.md §15): waking an
// entry must restore it to ready *order*, never hand it the lane directly.
// These pin the promotion rules down at the single-admission level.

// Tiny harness: manual clock, Dones parked by tag so the test controls
// exactly when each lane frees.
struct WakeHarness {
  LaneScheduler sched;
  std::int64_t now = 0;
  std::map<std::uint64_t, LaneScheduler::Done> running;

  explicit WakeHarness(const SchedulerConfig& cfg) : sched(cfg) {
    sched.set_clock([this] { return now; });
    sched.record_admissions(64);
  }
  void enqueue(std::uint64_t tag, ProbeClass cls,
               std::vector<LinkKey> footprint) {
    ProbeProfile p;
    p.tag = tag;
    p.priority = cls;
    p.footprint = std::move(footprint);
    sched.enqueue(
        [this, tag](LaneScheduler::Done done) {
          running.emplace(tag, std::move(done));
        },
        p);
  }
  void complete(std::uint64_t tag) {
    auto it = running.find(tag);
    ASSERT_NE(it, running.end()) << "tag " << tag << " not in flight";
    auto done = std::move(it->second);
    running.erase(it);
    done();
  }
  std::vector<std::uint64_t> admitted_tags() const {
    std::vector<std::uint64_t> tags;
    for (const AdmissionRecord& r : sched.admissions()) {
      tags.push_back(r.tag);
    }
    return tags;
  }
};

TEST(IncrementalWakeup, WakeOrderNeverPromotesPastBlockedCritical) {
  SchedulerConfig cfg;
  cfg.lanes = 2;
  cfg.link_disjoint = true;
  WakeHarness h(cfg);
  const LinkKey kTrunk = 7;

  h.enqueue(0, ProbeClass::kNormal, {kTrunk});      // admitted, holds trunk
  h.enqueue(1, ProbeClass::kBackground, {kTrunk});  // parks on trunk
  h.enqueue(2, ProbeClass::kCritical, {kTrunk});    // parks on trunk
  EXPECT_EQ(h.sched.in_flight(), 1u);
  EXPECT_EQ(h.sched.parked_on_links(), 2u);
  h.sched.check_consistency();

  // Freeing the trunk wakes BOTH waiters; the critical entry must win the
  // lane even though the background one is older and woke in the same
  // pass — promotion by class rank, never by wake-order accident. The
  // loser re-tests, fails against the new holder, and re-parks: exactly
  // one futile wakeup.
  h.complete(0);
  ASSERT_EQ(h.sched.in_flight(), 1u);
  EXPECT_EQ(h.admitted_tags(), (std::vector<std::uint64_t>{0, 2}));
  EXPECT_EQ(h.sched.scheduler_stats().wake_tests, 2u);
  EXPECT_EQ(h.sched.scheduler_stats().futile_wakeups, 1u);
  EXPECT_EQ(h.sched.parked_on_links(), 1u);
  // Admitting critical over the older background entry is a (counted)
  // priority inversion of plain FIFO order.
  EXPECT_EQ(h.sched.scheduler_stats().priority_inversions, 1u);
  h.sched.check_consistency();

  h.complete(2);
  EXPECT_EQ(h.admitted_tags(), (std::vector<std::uint64_t>{0, 2, 1}));
  EXPECT_EQ(h.sched.scheduler_stats().wake_tests, 3u);
  EXPECT_EQ(h.sched.scheduler_stats().deferred_disjoint, 3u);
  h.complete(1);
  EXPECT_TRUE(h.sched.idle());
  h.sched.check_consistency();
}

TEST(IncrementalWakeup, BackgroundBeatsFreshCriticalOnlyViaStarvationBound) {
  for (const bool bounded : {true, false}) {
    SchedulerConfig cfg;
    cfg.lanes = 1;
    cfg.starvation_limit_ns = bounded ? 100 * 1'000'000 : 0;
    WakeHarness h(cfg);

    h.enqueue(0, ProbeClass::kNormal, {});      // occupies the single lane
    h.enqueue(1, ProbeClass::kBackground, {});  // waits from t = 0
    h.now = 150 * 1'000'000;                    // background now starving
    h.enqueue(2, ProbeClass::kCritical, {});    // fresh
    h.complete(0);

    if (bounded) {
      // Past the hard bound the oldest entry front-runs any class.
      EXPECT_EQ(h.admitted_tags(), (std::vector<std::uint64_t>{0, 1}));
      EXPECT_EQ(h.sched.scheduler_stats().starvation_picks, 1u);
    } else {
      // Without the bound (and below the aging crossover) class order
      // holds: background is never promoted by queue position alone.
      EXPECT_EQ(h.admitted_tags(), (std::vector<std::uint64_t>{0, 2}));
      EXPECT_EQ(h.sched.scheduler_stats().starvation_picks, 0u);
    }
    h.complete(bounded ? 1 : 2);
    h.complete(bounded ? 2 : 1);
    EXPECT_TRUE(h.sched.idle());
    h.sched.check_consistency();
  }
}

TEST(IncrementalWakeup, AgingPromotesBackgroundExactlyAtTheQuantaCrossover) {
  // class gap = 2 classes · 8 quanta = 16 quanta of waiting. One quantum
  // under, critical still wins; at the crossover the tie breaks FIFO and
  // the aged background entry goes first.
  for (const std::int64_t release_ms : {155, 165}) {
    SchedulerConfig cfg;
    cfg.lanes = 1;
    cfg.aging_quantum_ns = 10 * 1'000'000;
    WakeHarness h(cfg);

    h.enqueue(0, ProbeClass::kNormal, {});
    h.enqueue(1, ProbeClass::kBackground, {});  // ages from t = 0
    h.now = release_ms * 1'000'000;
    h.enqueue(2, ProbeClass::kCritical, {});  // fresh: score 16
    h.complete(0);

    const std::vector<std::uint64_t> expect =
        release_ms < 160 ? std::vector<std::uint64_t>{0, 2}
                         : std::vector<std::uint64_t>{0, 1};
    EXPECT_EQ(h.admitted_tags(), expect) << "release at " << release_ms;
    h.complete(h.admitted_tags().back());
    while (!h.running.empty()) {
      auto it = h.running.begin();
      auto done = std::move(it->second);
      h.running.erase(it);
      done();
    }
    EXPECT_TRUE(h.sched.idle());
    h.sched.check_consistency();
  }
}

}  // namespace
}  // namespace netmon
