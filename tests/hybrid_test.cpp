// HybridMonitor coverage (paper §7): background SNMP polling with targeted
// NTTCP escalation. Exercises the calm path, anomaly-driven escalation,
// targeted-probe cooldown, high-fidelity record authority, supervision
// passthrough into the background director, stop(), and the observability
// group the monitor registers.

#include <gtest/gtest.h>

#include <vector>

#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "core/hybrid_monitor.hpp"
#include "obs/metrics.hpp"
#include "rmon/probe.hpp"
#include "sim/simulator.hpp"

namespace netmon::core {
namespace {

using sim::Duration;

class HybridFixture : public ::testing::Test {
 protected:
  HybridFixture() : bed_(sim_, options()) {}

  static apps::SharedLanOptions options() {
    apps::SharedLanOptions o;
    o.hosts = 4;
    return o;
  }

  HybridMonitor::Config config() {
    HybridMonitor::Config cfg;
    cfg.probe.message_length = 2048;
    cfg.probe.inter_send = Duration::ms(10);
    cfg.probe.message_count = 4;
    cfg.background_period = Duration::sec(1);
    return cfg;
  }

  std::vector<PathRequest> paths_to(std::initializer_list<int> targets) {
    std::vector<PathRequest> paths;
    for (int t : targets) {
      paths.push_back(PathRequest{
          Path(ProcessEndpoint{"app", bed_.host_ip(0), 0},
               ProcessEndpoint{"app", bed_.host_ip(t), 0}),
          {Metric::kReachability, Metric::kThroughput}});
    }
    return paths;
  }

  sim::Simulator sim_;
  apps::SharedLanTestbed bed_;
};

TEST_F(HybridFixture, CalmNetworkStaysInBackgroundMode) {
  HybridMonitor monitor(bed_.network(), bed_.station(), config());
  std::size_t tuples = 0;
  monitor.start(paths_to({1, 2}), [&](const PathMetricTuple&) { ++tuples; });
  sim_.run_for(Duration::sec(5));

  EXPECT_EQ(monitor.escalations(), 0u);
  EXPECT_EQ(monitor.targeted_measurements(), 0u);
  EXPECT_GT(tuples, 0u);
  // Background samples land in the shared database.
  const auto m = monitor.database().last_known(paths_to({1})[0].path,
                                               Metric::kReachability);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->value.valid);
  monitor.stop();
}

TEST_F(HybridFixture, DeadHostEscalatesToTargetedProbes) {
  HybridMonitor monitor(bed_.network(), bed_.station(), config());
  monitor.start(paths_to({1}), nullptr);
  sim_.run_for(Duration::sec(2));
  ASSERT_EQ(monitor.escalations(), 0u);

  bed_.host(1).set_up(false);
  sim_.run_for(Duration::sec(6));
  EXPECT_GT(monitor.escalations(), 0u);
  EXPECT_GT(monitor.targeted_measurements(), 0u);
  monitor.stop();
}

TEST_F(HybridFixture, CooldownBoundsTargetedProbeRate) {
  HybridMonitor::Config cfg = config();
  cfg.targeted_cooldown = Duration::sec(10);
  HybridMonitor monitor(bed_.network(), bed_.station(), cfg);
  monitor.start(paths_to({1}), nullptr);

  bed_.host(1).set_up(false);
  sim_.run_for(Duration::sec(8));
  // Every background round flags the dead path, but within one cooldown
  // window only the first anomaly escalates: at most one escalation burst
  // of two metrics' worth of targeted probes.
  EXPECT_GT(monitor.escalations(), 1u);
  EXPECT_LE(monitor.targeted_measurements(), 2u);
  monitor.stop();
}

TEST_F(HybridFixture, TargetedRecordHoldsAuthorityOverBackground) {
  HybridMonitor::Config cfg = config();
  cfg.targeted_authority = Duration::sec(30);
  HybridMonitor monitor(bed_.network(), bed_.station(), cfg);
  const Path path = paths_to({2})[0].path;
  monitor.start(paths_to({2}), nullptr);
  sim_.run_for(Duration::sec(3));

  monitor.probe_now(path, Metric::kThroughput);
  sim_.run_for(Duration::sec(1));
  ASSERT_EQ(monitor.targeted_measurements(), 1u);
  const auto targeted = monitor.database().last_known(path,
                                                      Metric::kThroughput);
  ASSERT_TRUE(targeted.has_value());
  ASSERT_TRUE(targeted->value.valid);

  // Several more background rounds: the lower-fidelity samples must not
  // displace the younger high-fidelity record.
  sim_.run_for(Duration::sec(5));
  const auto after = monitor.database().last_known(path, Metric::kThroughput);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->value.measured_at, targeted->value.measured_at);
  EXPECT_EQ(after->value.value, targeted->value.value);
  monitor.stop();
}

TEST_F(HybridFixture, SupervisionConfigReachesBackgroundDirector) {
  HybridMonitor::Config cfg = config();
  cfg.supervision.deadline = Duration::sec(2);
  cfg.supervision.max_retries = 3;
  cfg.supervision.breaker_threshold = 5;
  cfg.supervision.report_stale_on_exhaustion = true;
  HybridMonitor monitor(bed_.network(), bed_.station(), cfg);

  const SupervisionConfig& sup =
      monitor.background().director().supervision();
  EXPECT_EQ(sup.deadline, Duration::sec(2));
  EXPECT_EQ(sup.max_retries, 3);
  EXPECT_EQ(sup.breaker_threshold, 5);
  EXPECT_TRUE(sup.report_stale_on_exhaustion);
}

TEST_F(HybridFixture, SupervisedRetriesFireAgainstDeadTarget) {
  HybridMonitor::Config cfg = config();
  cfg.supervision.max_retries = 2;
  cfg.supervision.backoff_base = Duration::ms(50);
  HybridMonitor monitor(bed_.network(), bed_.station(), cfg);
  monitor.start(paths_to({1}), nullptr);
  bed_.host(1).set_up(false);
  sim_.run_for(Duration::sec(6));
  EXPECT_GT(monitor.background().director().stats().retries, 0u);
  monitor.stop();
}

TEST_F(HybridFixture, StopHaltsBackgroundPolling) {
  HybridMonitor monitor(bed_.network(), bed_.station(), config());
  monitor.start(paths_to({1}), nullptr);
  sim_.run_for(Duration::sec(3));
  monitor.stop();
  sim_.run_for(Duration::ms(100));  // drain in-flight measurements
  const std::uint64_t written = monitor.database().records_written();
  EXPECT_GT(written, 0u);
  sim_.run_for(Duration::sec(5));
  EXPECT_EQ(monitor.database().records_written(), written);
}

TEST_F(HybridFixture, RisingUtilizationTrapEscalates) {
  rmon::Probe probe(bed_.probe_host(), bed_.segment());
  HybridMonitor::Config cfg = config();
  cfg.targeted_cooldown = Duration::ms(500);
  HybridMonitor monitor(bed_.network(), bed_.station(), cfg);
  monitor.arm_utilization_alarm(probe, 0.30, 0.10, Duration::ms(500));
  monitor.start(paths_to({1}), nullptr);
  sim_.run_for(Duration::sec(2));
  ASSERT_EQ(monitor.escalations(), 0u);

  // Saturate the segment so the probe's rising threshold fires a trap.
  bed_.host(3).udp().bind(7009, nullptr);
  apps::CbrTraffic::Config cross;
  cross.rate_bps = 7e6;
  cross.packet_bytes = 1000;
  cross.dst_port = 7009;
  apps::CbrTraffic burst(bed_.host(2), bed_.host_ip(3), cross);
  burst.start();
  sim_.run_for(Duration::sec(4));
  burst.stop();
  EXPECT_GT(monitor.escalations(), 0u);
  monitor.stop();
}

TEST_F(HybridFixture, ObservabilityRegistersAndDetaches) {
  obs::Registry reg;
  {
    HybridMonitor monitor(bed_.network(), bed_.station(), config());
    monitor.attach_observability(reg);
    monitor.start(paths_to({1}), nullptr);
    sim_.run_for(Duration::sec(3));
    if constexpr (obs::kCompiledIn) {
      EXPECT_TRUE(reg.contains("hybrid.escalations"));
      EXPECT_TRUE(reg.contains("hybrid.background.measurements_started"));
      EXPECT_TRUE(reg.contains("hybrid.targeted.in_flight"));
      EXPECT_TRUE(reg.contains("hybrid.background.db.sample_interval_ns"));
      // The snapshot reflects live values.
      bool found = false;
      for (const auto& entry : reg.snapshot()) {
        if (entry.name == "hybrid.background.measurements_started") {
          found = true;
          EXPECT_GT(entry.value, 0.0);
        }
      }
      EXPECT_TRUE(found);
    }
    monitor.stop();
  }
  EXPECT_EQ(reg.size(), 0u);  // destructor detached everything
}

}  // namespace
}  // namespace netmon::core
