#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/rtds.hpp"
#include "apps/testbed.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "core/measurement_db.hpp"
#include "manager/resource_manager.hpp"

namespace netmon::mgr {
namespace {

using sim::Duration;
using sim::TimePoint;

class ManagerFixture : public ::testing::Test {
 protected:
  ManagerFixture() {
    apps::TestbedOptions options;
    options.servers = 3;
    options.clients = 4;
    bed = std::make_unique<apps::Testbed>(sim, options);

    core::HighFidelityMonitor::Config mon_cfg;
    mon_cfg.probe.message_count = 4;
    mon_cfg.probe.inter_send = Duration::ms(5);
    mon_cfg.probe.result_timeout = Duration::ms(500);
    monitor = std::make_unique<core::HighFidelityMonitor>(bed->network(),
                                                          mon_cfg);
  }

  ManagedApplication rtds_app() {
    ManagedApplication app;
    app.name = "rtds";
    for (int s = 0; s < bed->server_count(); ++s) {
      app.server_pool.push_back(bed->server_ip(s));
    }
    for (int c = 0; c < bed->client_count(); ++c) {
      app.client_pool.push_back(bed->client_ip(c));
    }
    app.port = apps::kRtdsPort;
    return app;
  }

  ResourceManager::Config fast_config() {
    ResourceManager::Config cfg;
    cfg.metrics = {core::Metric::kReachability};
    cfg.strikes = 2;
    return cfg;
  }

  sim::Simulator sim;
  std::unique_ptr<apps::Testbed> bed;
  std::unique_ptr<core::HighFidelityMonitor> monitor;
};

TEST_F(ManagerFixture, SubmitsFullPathMatrix) {
  ResourceManager manager(monitor->director(), fast_config());
  manager.manage(rtds_app(), bed->server_ip(0));
  sim.run_for(Duration::sec(5));
  // 3 servers x 4 clients, reachability only, cycling continuously.
  EXPECT_GE(manager.tuples_consumed(), 12u);
  EXPECT_EQ(manager.active_server("rtds"), bed->server_ip(0));
  EXPECT_EQ(manager.reconfigurations(), 0u);
}

TEST_F(ManagerFixture, InitialServerMustBeInPool) {
  ResourceManager manager(monitor->director(), fast_config());
  EXPECT_THROW(manager.manage(rtds_app(), net::IpAddr(99, 9, 9, 9)),
               std::invalid_argument);
}

TEST_F(ManagerFixture, DuplicateManageRejected) {
  ResourceManager manager(monitor->director(), fast_config());
  manager.manage(rtds_app(), bed->server_ip(0));
  EXPECT_THROW(manager.manage(rtds_app(), bed->server_ip(1)),
               std::logic_error);
}

TEST_F(ManagerFixture, FailsOverWhenActiveServerDies) {
  ResourceManager manager(monitor->director(), fast_config());
  std::vector<ReconfigurationEvent> events;
  manager.set_reconfiguration_callback(
      [&](const ReconfigurationEvent& e) { events.push_back(e); });
  manager.manage(rtds_app(), bed->server_ip(0));

  sim.run_for(Duration::sec(10));
  ASSERT_EQ(manager.reconfigurations(), 0u);

  bed->server(0).set_up(false);
  sim.run_for(Duration::sec(60));

  ASSERT_GE(manager.reconfigurations(), 1u);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].old_server, bed->server_ip(0));
  EXPECT_NE(manager.active_server("rtds"), bed->server_ip(0));
  // The replacement must be a healthy pool member.
  const auto active = manager.active_server("rtds");
  EXPECT_TRUE(active == bed->server_ip(1) || active == bed->server_ip(2));
}

TEST_F(ManagerFixture, SingleClientFailureDoesNotTriggerFailover) {
  ResourceManager::Config cfg = fast_config();
  cfg.failure_fraction = 0.5;  // one of four clients is below threshold
  ResourceManager manager(monitor->director(), cfg);
  manager.manage(rtds_app(), bed->server_ip(0));

  bed->client(3).set_up(false);
  sim.run_for(Duration::sec(60));
  EXPECT_EQ(manager.reconfigurations(), 0u);
  EXPECT_GT(manager.failing_fraction("rtds", bed->server_ip(0)), 0.0);
  EXPECT_LT(manager.failing_fraction("rtds", bed->server_ip(0)), 0.5);
}

TEST_F(ManagerFixture, RecoveredPathClearsStrikes) {
  ResourceManager manager(monitor->director(), fast_config());
  manager.manage(rtds_app(), bed->server_ip(0));
  bed->client(0).set_up(false);
  sim.run_for(Duration::sec(30));
  EXPECT_GT(manager.failing_fraction("rtds", bed->server_ip(0)), 0.0);
  bed->client(0).set_up(true);
  sim.run_for(Duration::sec(30));
  EXPECT_DOUBLE_EQ(manager.failing_fraction("rtds", bed->server_ip(0)), 0.0);
}

TEST_F(ManagerFixture, StopCancelsMonitoring) {
  ResourceManager manager(monitor->director(), fast_config());
  manager.manage(rtds_app(), bed->server_ip(0));
  sim.run_for(Duration::sec(3));
  manager.stop("rtds");
  const auto consumed = manager.tuples_consumed();
  sim.run_for(Duration::sec(5));
  EXPECT_EQ(manager.tuples_consumed(), consumed);
  EXPECT_THROW(manager.active_server("rtds"), std::out_of_range);
}

TEST_F(ManagerFixture, AllDisabledRequirementsRejectedAtManageTime) {
  // An application whose requirements are all disabled (reachability off,
  // throughput/latency sentinels unset) could never strike and would be
  // monitored forever for nothing; manage() must reject it up front.
  ResourceManager manager(monitor->director(), fast_config());
  auto app = rtds_app();
  app.requirements.require_reachability = false;
  app.requirements.min_throughput_bps = 0.0;
  app.requirements.max_latency_s = 0.0;
  EXPECT_THROW(manager.manage(app, bed->server_ip(0)),
               std::invalid_argument);
  // Nothing was registered: the name is still free.
  auto ok = rtds_app();
  manager.manage(ok, bed->server_ip(0));
}

TEST_F(ManagerFixture, FailoverPrunesOldServerStrikeEntries) {
  // Regression: the strikes map used to keep (old_server, client) entries
  // alive forever after a failover, growing without bound across repeated
  // reconfigurations. After failover, the departed server's entries must
  // be gone; after stop(), the application's entries must all be gone.
  ResourceManager manager(monitor->director(), fast_config());
  bool checked_in_callback = false;
  manager.set_reconfiguration_callback([&](const ReconfigurationEvent& e) {
    if (checked_in_callback) return;
    checked_in_callback = true;
    for (int c = 0; c < bed->client_count(); ++c) {
      EXPECT_EQ(manager.path_strikes(e.application, e.old_server,
                                     bed->client_ip(c)),
                0)
          << "stale strike entry for departed server, client " << c;
    }
  });
  manager.manage(rtds_app(), bed->server_ip(0));
  bed->server(0).set_up(false);
  sim.run_for(Duration::sec(60));
  ASSERT_GE(manager.reconfigurations(), 1u);
  ASSERT_TRUE(checked_in_callback);

  manager.stop("rtds");
  EXPECT_EQ(manager.strike_entries(), 0u);
}

TEST_F(ManagerFixture, ThroughputRequirementTriggersStrikes) {
  // Require more throughput than the probe's offered load can ever show:
  // every sample strikes, forcing reconfiguration attempts (all servers are
  // equally "bad", so the manager must pick some other pool member).
  ResourceManager::Config cfg;
  cfg.metrics = {core::Metric::kThroughput};
  cfg.strikes = 2;
  ResourceManager manager(monitor->director(), cfg);
  auto app = rtds_app();
  app.requirements.min_throughput_bps = 1e12;  // impossible
  std::vector<ReconfigurationEvent> events;
  manager.set_reconfiguration_callback(
      [&](const ReconfigurationEvent& e) { events.push_back(e); });
  manager.manage(app, bed->server_ip(0));
  sim.run_for(Duration::sec(60));
  EXPECT_GE(manager.reconfigurations(), 1u);
}

TEST_F(ManagerFixture, SenescenceWatchdogIsOffByDefault) {
  // One measurement round, then silence: every path goes senescent, but with
  // the default zero bound no timer runs and nothing ever strikes.
  ResourceManager::Config cfg = fast_config();
  cfg.mode = core::MonitorRequest::Mode::kOnce;
  ResourceManager manager(monitor->director(), cfg);
  manager.manage(rtds_app(), bed->server_ip(0));
  sim.run_for(Duration::sec(20));
  EXPECT_GT(manager.tuples_consumed(), 0u);
  EXPECT_EQ(manager.senescence_strikes(), 0u);
  EXPECT_EQ(manager.reconfigurations(), 0u);
}

TEST_F(ManagerFixture, SenescenceWatchdogStrikesSilentPathsIntoFailover) {
  // Same silence, but with a bound armed: stale data — however it got into
  // the database, locally sensed or replicated from a dead zone monitor —
  // degrades into failover pressure instead of being trusted forever.
  ResourceManager::Config cfg = fast_config();
  cfg.mode = core::MonitorRequest::Mode::kOnce;
  cfg.senescence_bound = Duration::sec(2);
  cfg.senescence_check_period = Duration::ms(500);
  ResourceManager manager(monitor->director(), cfg);
  manager.manage(rtds_app(), bed->server_ip(0));
  sim.run_for(Duration::sec(20));
  EXPECT_GT(manager.senescence_strikes(), 0u);
  // Every pool member is equally senescent here, so the manager keeps
  // rotating: at least the first failover left server 0.
  EXPECT_GE(manager.reconfigurations(), 1u);
}

TEST_F(ManagerFixture, SenescenceWatchdogQuietWhileSamplesFlow) {
  // Continuous sampling keeps every path younger than the bound: an armed
  // watchdog must not strike a healthy matrix.
  ResourceManager::Config cfg = fast_config();
  cfg.senescence_bound = Duration::sec(30);
  cfg.senescence_check_period = Duration::sec(1);
  ResourceManager manager(monitor->director(), cfg);
  manager.manage(rtds_app(), bed->server_ip(0));
  sim.run_for(Duration::sec(20));
  EXPECT_GT(manager.tuples_consumed(), 12u);
  EXPECT_EQ(manager.senescence_strikes(), 0u);
  EXPECT_EQ(manager.reconfigurations(), 0u);
}

TEST_F(ManagerFixture, SenescenceBoundRequiresPositiveCheckPeriod) {
  ResourceManager::Config cfg = fast_config();
  cfg.senescence_bound = Duration::sec(2);
  cfg.senescence_check_period = Duration::sec(0);
  EXPECT_THROW(ResourceManager(monitor->director(), cfg),
               std::invalid_argument);
}

TEST_F(ManagerFixture, RemovedListenerNeverFiresEvenAfterCapturesDie) {
  // Regression for the handle-based listener API: a listener whose captured
  // state is shorter-lived than the manager must be able to unregister and
  // then die without the next reconfiguration touching its dead captures
  // (the sanitize preset turns a missed removal into a hard ASan report).
  ResourceManager manager(monitor->director(), fast_config());
  int kept_fires = 0;
  manager.add_reconfiguration_listener(
      [&](const ReconfigurationEvent&) { ++kept_fires; });

  auto doomed = std::make_unique<std::vector<int>>(64, 41);
  const auto removed = manager.add_reconfiguration_listener(
      [buf = doomed.get()](const ReconfigurationEvent&) { (*buf)[0] += 1; });
  manager.remove_reconfiguration_listener(removed);
  manager.remove_reconfiguration_listener(removed);  // double remove: no-op
  manager.remove_reconfiguration_listener(999999);   // unknown: no-op
  doomed.reset();  // the removed listener's capture is now a dangling pointer

  manager.manage(rtds_app(), bed->server_ip(0));
  bed->server(0).set_up(false);
  sim.run_for(Duration::sec(60));
  ASSERT_GE(manager.reconfigurations(), 1u);
  EXPECT_GE(kept_fires, 1);
}

TEST_F(ManagerFixture, ListenerCanRemoveItselfDuringDispatch) {
  ResourceManager manager(monitor->director(), fast_config());
  int once_fires = 0;
  int steady_fires = 0;
  ResourceManager::ListenerHandle once = 0;
  once = manager.add_reconfiguration_listener([&](const ReconfigurationEvent&) {
    ++once_fires;
    manager.remove_reconfiguration_listener(once);  // from inside dispatch
  });
  manager.add_reconfiguration_listener(
      [&](const ReconfigurationEvent&) { ++steady_fires; });

  manager.manage(rtds_app(), bed->server_ip(0));
  bed->server(0).set_up(false);
  sim.run_for(Duration::sec(60));
  ASSERT_GE(manager.reconfigurations(), 1u);

  // Kill the replacement too: the second reconfiguration must still reach
  // the remaining listener but never the self-removed one.
  const auto active = manager.active_server("rtds");
  for (int s = 0; s < bed->server_count(); ++s) {
    if (bed->server_ip(s) == active) bed->server(s).set_up(false);
  }
  sim.run_for(Duration::sec(60));
  ASSERT_GE(manager.reconfigurations(), 2u);
  EXPECT_EQ(once_fires, 1);
  EXPECT_EQ(static_cast<std::uint64_t>(steady_fires),
            manager.reconfigurations());
}

TEST(WindowedQuantile, WeighsTailsOverTheWindowAndSkipsInvalidSamples) {
  // Direct unit test of the trend breaker's quantile on a hand-built tiered
  // database: 120 quiet latency samples, one spike, one failed measurement.
  core::MeasurementDatabase db;
  const core::Path path(
      core::ProcessEndpoint{"s", net::IpAddr(10, 0, 0, 1), 7},
      core::ProcessEndpoint{"c", net::IpAddr(10, 0, 1, 1), 7});
  const core::PathId id = db.id_of(path);
  constexpr std::int64_t kMs = 1'000'000;
  for (int i = 1; i <= 120; ++i) {
    db.record(id, core::Metric::kOneWayLatency,
              core::MetricValue::of(0.01, TimePoint::from_nanos(i * kMs)));
  }
  db.record(id, core::Metric::kOneWayLatency,
            core::MetricValue::of(5.0, TimePoint::from_nanos(121 * kMs)));
  db.record(id, core::Metric::kOneWayLatency,
            core::MetricValue::failed(TimePoint::from_nanos(122 * kMs)));

  const TimePoint now = TimePoint::from_nanos(122 * kMs);
  std::uint64_t n = 0;

  // p99 over 121 valid samples: rank ceil(0.99*121)=120 — the single spike
  // (rank 121) is excluded; the failed sample never counts.
  auto p99 = ResourceManager::windowed_quantile(
      db, path, core::Metric::kOneWayLatency, now, Duration::sec(60), 0.99,
      /*upper=*/true, &n);
  ASSERT_TRUE(p99.has_value());
  EXPECT_EQ(n, 121u);
  EXPECT_DOUBLE_EQ(*p99, 0.01);

  // The extreme tail does reach the spike (rank ceil(0.999*121)=121).
  auto p999 = ResourceManager::windowed_quantile(
      db, path, core::Metric::kOneWayLatency, now, Duration::sec(60), 0.999,
      /*upper=*/true);
  ASSERT_TRUE(p999.has_value());
  EXPECT_DOUBLE_EQ(*p999, 5.0);

  // Mirrored lower tail (the throughput convention): rank 121-120+1=2, so a
  // single low outlier would be excluded the same way.
  auto lower = ResourceManager::windowed_quantile(
      db, path, core::Metric::kOneWayLatency, now, Duration::sec(60), 0.99,
      /*upper=*/false);
  ASSERT_TRUE(lower.has_value());
  EXPECT_DOUBLE_EQ(*lower, 0.01);

  // A short window narrows the population: [117ms, 122ms] holds 5 valid
  // samples, so rank ceil(0.99*5)=5 lands on the spike.
  auto recent = ResourceManager::windowed_quantile(
      db, path, core::Metric::kOneWayLatency, now, Duration::ms(5), 0.99,
      /*upper=*/true, &n);
  ASSERT_TRUE(recent.has_value());
  EXPECT_EQ(n, 5u);
  EXPECT_DOUBLE_EQ(*recent, 5.0);

  // A metric with no data at all: nullopt, zero valid samples.
  auto none = ResourceManager::windowed_quantile(
      db, path, core::Metric::kThroughput, now, Duration::sec(60), 0.99,
      /*upper=*/true, &n);
  EXPECT_FALSE(none.has_value());
  EXPECT_EQ(n, 0u);
}

// Latency sensor with a shaped per-call value: a quiet base latency, with a
// degraded value for paths from one server starting at a given global call
// index — either one spike or a sustained shift. Completes via the simulator
// so rounds interleave like a real sensor's.
class ShapedLatencySensor : public core::NetworkSensor {
 public:
  explicit ShapedLatencySensor(sim::Simulator& sim) : sim_(sim) {}
  std::string name() const override { return "shaped-latency"; }
  bool supports(core::Metric m) const override {
    return m == core::Metric::kOneWayLatency;
  }
  void measure(const core::Path& path, core::Metric, Done done) override {
    double v = base;
    const int call = calls_++;
    if (path.source().host == degraded_source && call >= degrade_from) {
      if (!single_spike) {
        v = degraded_value;
      } else if (!spiked_) {
        v = degraded_value;
        spiked_ = true;
      }
    }
    sim_.schedule_in(Duration::ms(1), [this, v, done = std::move(done)] {
      done(core::MetricValue::of(v, sim_.now()));
    });
  }

  double base = 0.01;
  double degraded_value = 10.0;
  net::IpAddr degraded_source;
  int degrade_from = 1 << 30;
  bool single_spike = false;

 private:
  sim::Simulator& sim_;
  int calls_ = 0;
  bool spiked_ = false;
};

struct TrendHarness {
  TrendHarness() : director(sim, 1), sensor(sim) {
    director.register_sensor(core::Metric::kOneWayLatency, &sensor);
  }

  ManagedApplication latency_app() const {
    ManagedApplication app;
    app.name = "shaped";
    app.server_pool = {net::IpAddr(10, 0, 0, 1), net::IpAddr(10, 0, 0, 2)};
    app.client_pool = {net::IpAddr(10, 0, 1, 1)};
    app.port = 7;
    app.requirements.require_reachability = false;
    app.requirements.max_latency_s = 0.1;
    return app;
  }

  static ResourceManager::Config trend_config() {
    ResourceManager::Config cfg;
    cfg.metrics = {core::Metric::kOneWayLatency};
    cfg.strikes = 1;  // a single bad verdict is enough without the trend
    cfg.trend.window = Duration::sec(60);
    cfg.trend.min_samples = 100;
    return cfg;
  }

  sim::Simulator sim;
  core::SensorDirector director;
  ShapedLatencySensor sensor;
};

TEST(TrendBreaker, IsolatedSpikeIsSuppressedByTheWindowQuantile) {
  // 10s of latency that would trip the last-sample breaker exactly once: the
  // p99 over the window stays quiet, so the trend verdict overrides the
  // strike and no reconfiguration happens.
  TrendHarness h;
  const auto app = h.latency_app();
  h.sensor.degraded_source = app.server_pool[0];
  h.sensor.degrade_from = 250;  // ~125 prior samples on the degraded path
  h.sensor.single_spike = true;

  ResourceManager manager(h.director, TrendHarness::trend_config());
  manager.manage(app, app.server_pool[0]);
  h.sim.run_for(Duration::ms(700));

  EXPECT_EQ(manager.reconfigurations(), 0u);
  EXPECT_GE(manager.trend_overrides(), 1u);
  EXPECT_EQ(
      manager.path_strikes("shaped", app.server_pool[0], app.client_pool[0]),
      0);
  EXPECT_EQ(manager.active_server("shaped"), app.server_pool[0]);
}

TEST(TrendBreaker, SustainedShiftPushesTheQuantileOverAndFailsOver) {
  // The same setup but the degradation persists: within a few samples the
  // window p99 itself crosses max_latency_s, the path strikes, and the
  // manager fails over to the healthy pool member.
  TrendHarness h;
  const auto app = h.latency_app();
  h.sensor.degraded_source = app.server_pool[0];
  h.sensor.degrade_from = 250;
  h.sensor.single_spike = false;

  ResourceManager manager(h.director, TrendHarness::trend_config());
  manager.manage(app, app.server_pool[0]);
  h.sim.run_for(Duration::ms(700));

  EXPECT_GE(manager.reconfigurations(), 1u);
  EXPECT_EQ(manager.active_server("shaped"), app.server_pool[1]);
  // The first degraded sample was still overridden (suppressed) before the
  // tail itself crossed — the counter sees both directions of disagreement.
  EXPECT_GE(manager.trend_overrides(), 1u);
}

TEST(TrendBreaker, InvalidTrendConfigRejected) {
  sim::Simulator sim;
  core::SensorDirector director(sim, 1);
  ResourceManager::Config cfg;
  cfg.trend.window = Duration::sec(10);
  cfg.trend.quantile = 0.4;  // must be in (0.5, 1)
  EXPECT_THROW(ResourceManager(director, cfg), std::invalid_argument);
  cfg.trend.quantile = 0.99;
  cfg.trend.min_samples = 0;
  EXPECT_THROW(ResourceManager(director, cfg), std::invalid_argument);
  cfg.trend.min_samples = 1;
  ResourceManager ok(director, cfg);  // valid again
  EXPECT_EQ(ok.trend_overrides(), 0u);
}

}  // namespace
}  // namespace netmon::mgr
