#include <gtest/gtest.h>

#include "apps/rtds.hpp"
#include "apps/testbed.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "manager/resource_manager.hpp"

namespace netmon::mgr {
namespace {

using sim::Duration;

class ManagerFixture : public ::testing::Test {
 protected:
  ManagerFixture() {
    apps::TestbedOptions options;
    options.servers = 3;
    options.clients = 4;
    bed = std::make_unique<apps::Testbed>(sim, options);

    core::HighFidelityMonitor::Config mon_cfg;
    mon_cfg.probe.message_count = 4;
    mon_cfg.probe.inter_send = Duration::ms(5);
    mon_cfg.probe.result_timeout = Duration::ms(500);
    monitor = std::make_unique<core::HighFidelityMonitor>(bed->network(),
                                                          mon_cfg);
  }

  ManagedApplication rtds_app() {
    ManagedApplication app;
    app.name = "rtds";
    for (int s = 0; s < bed->server_count(); ++s) {
      app.server_pool.push_back(bed->server_ip(s));
    }
    for (int c = 0; c < bed->client_count(); ++c) {
      app.client_pool.push_back(bed->client_ip(c));
    }
    app.port = apps::kRtdsPort;
    return app;
  }

  ResourceManager::Config fast_config() {
    ResourceManager::Config cfg;
    cfg.metrics = {core::Metric::kReachability};
    cfg.strikes = 2;
    return cfg;
  }

  sim::Simulator sim;
  std::unique_ptr<apps::Testbed> bed;
  std::unique_ptr<core::HighFidelityMonitor> monitor;
};

TEST_F(ManagerFixture, SubmitsFullPathMatrix) {
  ResourceManager manager(monitor->director(), fast_config());
  manager.manage(rtds_app(), bed->server_ip(0));
  sim.run_for(Duration::sec(5));
  // 3 servers x 4 clients, reachability only, cycling continuously.
  EXPECT_GE(manager.tuples_consumed(), 12u);
  EXPECT_EQ(manager.active_server("rtds"), bed->server_ip(0));
  EXPECT_EQ(manager.reconfigurations(), 0u);
}

TEST_F(ManagerFixture, InitialServerMustBeInPool) {
  ResourceManager manager(monitor->director(), fast_config());
  EXPECT_THROW(manager.manage(rtds_app(), net::IpAddr(99, 9, 9, 9)),
               std::invalid_argument);
}

TEST_F(ManagerFixture, DuplicateManageRejected) {
  ResourceManager manager(monitor->director(), fast_config());
  manager.manage(rtds_app(), bed->server_ip(0));
  EXPECT_THROW(manager.manage(rtds_app(), bed->server_ip(1)),
               std::logic_error);
}

TEST_F(ManagerFixture, FailsOverWhenActiveServerDies) {
  ResourceManager manager(monitor->director(), fast_config());
  std::vector<ReconfigurationEvent> events;
  manager.set_reconfiguration_callback(
      [&](const ReconfigurationEvent& e) { events.push_back(e); });
  manager.manage(rtds_app(), bed->server_ip(0));

  sim.run_for(Duration::sec(10));
  ASSERT_EQ(manager.reconfigurations(), 0u);

  bed->server(0).set_up(false);
  sim.run_for(Duration::sec(60));

  ASSERT_GE(manager.reconfigurations(), 1u);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].old_server, bed->server_ip(0));
  EXPECT_NE(manager.active_server("rtds"), bed->server_ip(0));
  // The replacement must be a healthy pool member.
  const auto active = manager.active_server("rtds");
  EXPECT_TRUE(active == bed->server_ip(1) || active == bed->server_ip(2));
}

TEST_F(ManagerFixture, SingleClientFailureDoesNotTriggerFailover) {
  ResourceManager::Config cfg = fast_config();
  cfg.failure_fraction = 0.5;  // one of four clients is below threshold
  ResourceManager manager(monitor->director(), cfg);
  manager.manage(rtds_app(), bed->server_ip(0));

  bed->client(3).set_up(false);
  sim.run_for(Duration::sec(60));
  EXPECT_EQ(manager.reconfigurations(), 0u);
  EXPECT_GT(manager.failing_fraction("rtds", bed->server_ip(0)), 0.0);
  EXPECT_LT(manager.failing_fraction("rtds", bed->server_ip(0)), 0.5);
}

TEST_F(ManagerFixture, RecoveredPathClearsStrikes) {
  ResourceManager manager(monitor->director(), fast_config());
  manager.manage(rtds_app(), bed->server_ip(0));
  bed->client(0).set_up(false);
  sim.run_for(Duration::sec(30));
  EXPECT_GT(manager.failing_fraction("rtds", bed->server_ip(0)), 0.0);
  bed->client(0).set_up(true);
  sim.run_for(Duration::sec(30));
  EXPECT_DOUBLE_EQ(manager.failing_fraction("rtds", bed->server_ip(0)), 0.0);
}

TEST_F(ManagerFixture, StopCancelsMonitoring) {
  ResourceManager manager(monitor->director(), fast_config());
  manager.manage(rtds_app(), bed->server_ip(0));
  sim.run_for(Duration::sec(3));
  manager.stop("rtds");
  const auto consumed = manager.tuples_consumed();
  sim.run_for(Duration::sec(5));
  EXPECT_EQ(manager.tuples_consumed(), consumed);
  EXPECT_THROW(manager.active_server("rtds"), std::out_of_range);
}

TEST_F(ManagerFixture, AllDisabledRequirementsRejectedAtManageTime) {
  // An application whose requirements are all disabled (reachability off,
  // throughput/latency sentinels unset) could never strike and would be
  // monitored forever for nothing; manage() must reject it up front.
  ResourceManager manager(monitor->director(), fast_config());
  auto app = rtds_app();
  app.requirements.require_reachability = false;
  app.requirements.min_throughput_bps = 0.0;
  app.requirements.max_latency_s = 0.0;
  EXPECT_THROW(manager.manage(app, bed->server_ip(0)),
               std::invalid_argument);
  // Nothing was registered: the name is still free.
  auto ok = rtds_app();
  manager.manage(ok, bed->server_ip(0));
}

TEST_F(ManagerFixture, FailoverPrunesOldServerStrikeEntries) {
  // Regression: the strikes map used to keep (old_server, client) entries
  // alive forever after a failover, growing without bound across repeated
  // reconfigurations. After failover, the departed server's entries must
  // be gone; after stop(), the application's entries must all be gone.
  ResourceManager manager(monitor->director(), fast_config());
  bool checked_in_callback = false;
  manager.set_reconfiguration_callback([&](const ReconfigurationEvent& e) {
    if (checked_in_callback) return;
    checked_in_callback = true;
    for (int c = 0; c < bed->client_count(); ++c) {
      EXPECT_EQ(manager.path_strikes(e.application, e.old_server,
                                     bed->client_ip(c)),
                0)
          << "stale strike entry for departed server, client " << c;
    }
  });
  manager.manage(rtds_app(), bed->server_ip(0));
  bed->server(0).set_up(false);
  sim.run_for(Duration::sec(60));
  ASSERT_GE(manager.reconfigurations(), 1u);
  ASSERT_TRUE(checked_in_callback);

  manager.stop("rtds");
  EXPECT_EQ(manager.strike_entries(), 0u);
}

TEST_F(ManagerFixture, ThroughputRequirementTriggersStrikes) {
  // Require more throughput than the probe's offered load can ever show:
  // every sample strikes, forcing reconfiguration attempts (all servers are
  // equally "bad", so the manager must pick some other pool member).
  ResourceManager::Config cfg;
  cfg.metrics = {core::Metric::kThroughput};
  cfg.strikes = 2;
  ResourceManager manager(monitor->director(), cfg);
  auto app = rtds_app();
  app.requirements.min_throughput_bps = 1e12;  // impossible
  std::vector<ReconfigurationEvent> events;
  manager.set_reconfiguration_callback(
      [&](const ReconfigurationEvent& e) { events.push_back(e); });
  manager.manage(app, bed->server_ip(0));
  sim.run_for(Duration::sec(60));
  EXPECT_GE(manager.reconfigurations(), 1u);
}

}  // namespace
}  // namespace netmon::mgr
