// Tiered-storage ingest soak (ctest labels: scale, storage): the 10k-path
// fabric's full path set hammered straight into a tiered
// MeasurementDatabase — wall-clock sustained ingest must reach at least
// 1M samples/sec (release builds) while the page pool stays inside its
// configured bound with zero overcommits, asserted both from StoreStats and
// from the SelfMib gauge/counter tables the way an external station would
// read them (DESIGN.md §13). Writes db-tier-stats.json for the CI artifact.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "apps/fabric.hpp"
#include "core/measurement_db.hpp"
#include "obs/metrics.hpp"
#include "obs/self_mib.hpp"
#include "sim/simulator.hpp"
#include "snmp/mib.hpp"

namespace netmon {
namespace {

using core::MeasurementDatabase;
using core::Metric;
using core::MetricValue;
using core::PathId;
using core::TieredStorageConfig;
using sim::Duration;
using sim::TimePoint;

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

constexpr std::int64_t kMs = 1'000'000;

// Fetches a SelfMib gauge (milli-units) or counter value by metric name via
// a full table walk — the external-station view of the registry.
std::optional<std::int64_t> mib_gauge(const std::vector<snmp::VarBind>& walk,
                                      const std::string& name) {
  for (std::size_t i = 0; i < walk.size(); ++i) {
    if (walk[i].value.is<std::string>() &&
        walk[i].value.as<std::string>() == name &&
        i + 1 < walk.size() && walk[i + 1].value.is<std::int64_t>()) {
      return walk[i + 1].value.as<std::int64_t>();
    }
  }
  return std::nullopt;
}

std::optional<std::uint64_t> mib_counter(const std::vector<snmp::VarBind>& walk,
                                         const std::string& name) {
  for (std::size_t i = 0; i < walk.size(); ++i) {
    if (walk[i].value.is<std::string>() &&
        walk[i].value.as<std::string>() == name &&
        i + 1 < walk.size() && walk[i + 1].value.is<snmp::Counter64>()) {
      return walk[i + 1].value.as<snmp::Counter64>().value;
    }
  }
  return std::nullopt;
}

TEST(DbScaleSoak, TieredIngestSustainsRateWithinMemoryBound) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "requires NETMON_OBS";

  // Realistic 10k-path working set: the fabric's interned path identities,
  // not synthetic keys.
  sim::Simulator sim;
  apps::FabricTestbed bed(sim, apps::FabricOptions{});
  ASSERT_EQ(bed.path_count(), 10000);

  TieredStorageConfig config;
  config.page_points = 16;
  config.rollup_factor = 8;
  config.tiers = 3;
  // 10k series × up to 3 open pages stays under the bound, leaving ~2.7k
  // sealed-page slots to churn: the soak exercises eviction continuously
  // without ever needing an overcommit.
  config.max_pages = 32768;

  obs::Registry registry;
  MeasurementDatabase db(/*history_depth=*/2, config);
  db.attach_observability(registry, "db");

  std::vector<PathId> ids;
  ids.reserve(10000);
  for (std::size_t s = 0; s < 40; ++s) {
    for (std::size_t c = 0; c < 250; ++c) {
      ids.push_back(db.id_of(bed.path(s, c)));
    }
  }

  // 2000 samples per series (125 tier-0 rollovers each) in release; scaled
  // down under ASan where per-access overhead dominates.
  const std::size_t sweeps = kSanitized ? 200 : 2000;
  const std::size_t total = sweeps * ids.size();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
    const TimePoint at = TimePoint::from_nanos(
        static_cast<std::int64_t>(sweep + 1) * kMs);
    const double value = 1.0e6 + static_cast<double>(sweep % 97);
    for (const PathId id : ids) {
      db.record(id, Metric::kThroughput, MetricValue::of(value, at));
    }
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  const double rate = static_cast<double>(total) /
                      (static_cast<double>(elapsed.count()) * 1e-9);

  const double required = kSanitized ? 1.0e5 : 1.0e6;
  EXPECT_GE(rate, required)
      << "sustained ingest " << rate << " samples/sec over " << total
      << " samples";

  // Memory bound from the engine's own accounting: the pool never grew past
  // the configured cap and never had to overcommit for open pages.
  const core::StoreStats& stats = db.tiered().stats();
  EXPECT_EQ(stats.samples, total);
  EXPECT_EQ(stats.overcommits, 0u);
  EXPECT_LE(stats.pool_pages, static_cast<std::uint64_t>(config.max_pages));
  EXPECT_EQ(stats.bytes, stats.pages_in_use * db.tiered().page_bytes());
  EXPECT_GT(db.tiered().evictions(), 0u);
  EXPECT_GT(db.tiered().tier_stats(1).rollovers, 0u);  // tiers actually fed

  // The same bound read the way a management station would: walk the
  // SelfMib tables and decode the db pool gauges / tier counters.
  snmp::MibTree mib;
  obs::SelfMib self(mib, registry);
  const auto binds = mib.walk(self.base());
  const auto pool_pages = mib_gauge(binds, "db.pool.pages");
  ASSERT_TRUE(pool_pages.has_value());
  EXPECT_LE(*pool_pages / 1000, static_cast<std::int64_t>(config.max_pages));
  const auto pool_overcommits = mib_gauge(binds, "db.pool.overcommits");
  ASSERT_TRUE(pool_overcommits.has_value());
  EXPECT_EQ(*pool_overcommits, 0);
  const auto rollovers = mib_counter(binds, "db.tier0.rollovers");
  ASSERT_TRUE(rollovers.has_value());
  EXPECT_EQ(*rollovers, db.tiered().tier_stats(0).rollovers);
  const auto evictions = mib_counter(binds, "db.tier0.evictions");
  ASSERT_TRUE(evictions.has_value());
  EXPECT_GT(*evictions, 0u);

  // Range-query sanity on the soaked data: the full horizon at a coarse
  // resolution is served without inventing evicted data.
  const auto result =
      db.query(ids.front(), Metric::kThroughput, TimePoint::from_nanos(0),
               TimePoint::from_nanos(static_cast<std::int64_t>(sweeps + 1) * kMs),
               Duration::ms(50));
  ASSERT_FALSE(result.points.empty());
  std::uint64_t covered = 0;
  for (const auto& p : result.points) covered += p.count;
  for (const auto& g : result.gaps) {
    for (const auto& p : result.points) {
      EXPECT_TRUE(p.last_ns < g.from_ns || p.first_ns >= g.to_ns);
    }
  }
  EXPECT_LE(covered, sweeps);
  EXPECT_GT(covered, 0u);

  // CI artifact: headline numbers + the registry snapshot.
  std::ofstream out("db-tier-stats.json");
  out << "{\n\"samples\": " << total << ",\n\"samples_per_sec\": " << rate
      << ",\n\"max_pages\": " << config.max_pages
      << ",\n\"pool_pages\": " << stats.pool_pages
      << ",\n\"pool_bytes\": " << stats.bytes
      << ",\n\"overcommits\": " << stats.overcommits
      << ",\n\"evictions\": " << db.tiered().evictions()
      << ",\n\"sanitized\": " << (kSanitized ? "true" : "false")
      << ",\n\"registry\": " << registry.export_json() << "\n}\n";
  ASSERT_TRUE(out.good());
}

}  // namespace
}  // namespace netmon
