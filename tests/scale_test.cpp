// 10k-path soak (ctest label: scale): the budgeted multi-lane scheduler on
// the full FabricTestbed — 40 servers × 250 clients = 10000 application
// paths — must cut senescence at least 3× versus the paper's serial test
// sequencer while the IntrusivenessMeter-reported monitoring peak stays
// within the declared budget B. This is the ⌈C·S/K⌉·T claim of DESIGN.md
// §11, asserted from telemetry rather than from the closed form. The obs
// registry snapshot of both runs is written to scale-obs-snapshot.json so
// CI can archive the telemetry behind the assertion.

#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "apps/fabric.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "nttcp/nttcp.hpp"
#include "obs/intrusiveness.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace netmon {
namespace {

using core::SchedulerConfig;
using sim::Duration;

// The probed application: L = 8192 bytes every P = 5 ms, two messages per
// burst, so one probe occupies its route ~10 ms and a serial sweep of the
// matrix takes C·S·T ≈ 10000 · 12 ms ≈ 2 minutes of simulated time.
nttcp::NttcpConfig soak_probe() {
  nttcp::NttcpConfig probe;
  probe.message_length = 8192;
  probe.inter_send = Duration::ms(5);
  probe.message_count = 2;
  probe.result_timeout = Duration::sec(1);
  return probe;
}

// Declared load of one fabric probe in meter units (2 L3 hops: every
// server→client route crosses exactly one spine router).
double probe_offered_bps() {
  return 2.0 * nttcp::NttcpProbe::peak_load_bps(soak_probe());
}

struct SoakResult {
  double round_duration_s = 0.0;  // steady-state matrix cycle (round 2)
  double sample_gap_s = 0.0;      // observed inter-sample gap on path (0,0)
  double metered_peak_bps = 0.0;
  core::SchedulerStats stats;
  std::uint64_t rounds = 0;
  std::string obs_json;
};

SoakResult run_soak(const SchedulerConfig& scheduling) {
  sim::Simulator sim;
  apps::FabricTestbed bed(sim, apps::FabricOptions{});
  EXPECT_EQ(bed.path_count(), 10000);

  obs::Registry registry;
  core::HighFidelityMonitor::Config cfg;
  cfg.probe = soak_probe();
  cfg.scheduling = scheduling;
  cfg.history_depth = 2;  // 10k paths: keep the DB footprint flat
  cfg.supervision.deadline = Duration::sec(2);
  core::HighFidelityMonitor monitor(bed.network(), cfg);
  monitor.director().attach_observability(registry, "director");
  obs::IntrusivenessMeter meter(sim, bed.network(), registry,
                                "net.intrusiveness", Duration::ms(100));

  core::MonitorRequest request;
  request.paths =
      bed.full_matrix({core::Metric::kThroughput}, core::ProbeClass::kNormal,
                      apps::FabricTestbed::SweepOrder::kStriped);
  request.mode = core::MonitorRequest::Mode::kContinuous;
  request.reporting = core::MonitorRequest::Reporting::kSynchronous;

  std::vector<double> round_ends_s;
  const auto id = monitor.director().submit(
      request, nullptr,
      [&round_ends_s, &sim](const std::vector<core::PathMetricTuple>&) {
        round_ends_s.push_back(sim.now().to_seconds());
      });

  // Two full matrix cycles give every series two samples — the minimum for
  // an observed inter-sample gap. Cap well above the serial C·S·T.
  while (round_ends_s.size() < 2 &&
         sim.now() < sim::TimePoint::from_nanos(Duration::sec(600).nanos())) {
    sim.run_for(Duration::sec(5));
  }
  monitor.director().cancel(id);

  SoakResult result;
  result.rounds = round_ends_s.size();
  if (round_ends_s.size() >= 2) {
    result.round_duration_s = round_ends_s[1] - round_ends_s[0];
  }
  const auto* history =
      monitor.database().history(bed.path(0, 0), core::Metric::kThroughput);
  if (history != nullptr && history->size() >= 2) {
    const auto& h = *history;
    result.sample_gap_s = (h[h.size() - 1].value.measured_at -
                           h[h.size() - 2].value.measured_at)
                              .to_seconds();
  }
  result.metered_peak_bps = meter.peak_bps(net::TrafficClass::kMonitoring);
  monitor.director().sequencer().check_consistency();
  result.stats = monitor.director().sequencer().scheduler_stats();
  result.obs_json = registry.export_json();
  return result;
}

TEST(ScaleSoak, BudgetedLanesBeatSerialSenescenceThreefoldWithinBudget) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "requires NETMON_OBS";

  // The paper's serial sequencer: K = 1, B = L/P — the scheduler's exact
  // special case (progress guarantee admits the single probe under any B).
  SchedulerConfig serial_cfg;
  serial_cfg.lanes = 1;
  serial_cfg.budget_bps = probe_offered_bps();

  // Budgeted multi-lane: K = 4 link-disjoint lanes under an explicit
  // intrusiveness budget with headroom for exactly 4 concurrent probes.
  const double budget = 4.2 * probe_offered_bps();
  SchedulerConfig lanes_cfg;
  lanes_cfg.lanes = 4;
  lanes_cfg.budget_bps = budget;
  lanes_cfg.link_disjoint = true;
  lanes_cfg.starvation_limit_ns = Duration::sec(60).nanos();

  const SoakResult serial = run_soak(serial_cfg);
  const SoakResult budgeted = run_soak(lanes_cfg);

  ASSERT_GE(serial.rounds, 2u) << "serial soak never completed two rounds";
  ASSERT_GE(budgeted.rounds, 2u) << "budgeted soak never completed 2 rounds";
  ASSERT_GT(serial.round_duration_s, 0.0);
  ASSERT_GT(budgeted.round_duration_s, 0.0);

  // Senescence: the matrix cycle time is each series' inter-sample gap
  // (kContinuous re-sweeps back to back). Both the round clock and the DB's
  // own history must show >= 3x improvement.
  const double round_ratio =
      serial.round_duration_s / budgeted.round_duration_s;
  EXPECT_GE(round_ratio, 3.0)
      << "serial " << serial.round_duration_s << " s vs budgeted "
      << budgeted.round_duration_s << " s";
  ASSERT_GT(budgeted.sample_gap_s, 0.0);
  EXPECT_GE(serial.sample_gap_s / budgeted.sample_gap_s, 3.0);

  // Intrusiveness: the meter (per-L3-hop octets over 100 ms ticks) must
  // stay within the budget. Slack covers tick quantization (21 vs 20
  // messages per tick) and the result-report bytes the declared load omits.
  EXPECT_GT(budgeted.metered_peak_bps, 0.0);
  EXPECT_LE(budgeted.metered_peak_bps, budget * 1.2)
      << "metered monitoring peak exceeds the intrusiveness budget";
  // The serial baseline corroborates the units: one probe's declared load,
  // same slack.
  EXPECT_LE(serial.metered_peak_bps, probe_offered_bps() * 1.2);
  // And the lanes were genuinely used: peak parallel wire load well above
  // one probe's.
  EXPECT_GE(budgeted.metered_peak_bps, 2.0 * serial.metered_peak_bps);

  // Both rounds fully drained through the scheduler. (The striped sweep
  // keeps admissible work at the queue head, so the gates rarely defer
  // here; gate behavior under a hostile server-major sweep is asserted in
  // scheduler_test's fabric case.)
  EXPECT_GE(budgeted.stats.admitted, 2u * 10000u);

  // Telemetry artifact for CI: both runs' registry snapshots plus the
  // headline numbers, stable-JSON inside, so diffs across commits are
  // meaningful.
  std::ofstream out("scale-obs-snapshot.json");
  out << "{\n\"senescence_ratio\": " << round_ratio
      << ",\n\"serial_round_s\": " << serial.round_duration_s
      << ",\n\"budgeted_round_s\": " << budgeted.round_duration_s
      << ",\n\"budget_bps\": " << budget
      << ",\n\"budgeted_peak_bps\": " << budgeted.metered_peak_bps
      << ",\n\"serial\": " << serial.obs_json
      << ",\n\"budgeted\": " << budgeted.obs_json << "\n}\n";
  ASSERT_TRUE(out.good());
}

// ---------------------------------------------------------------------------
// 100k-path admission soak (DESIGN.md §15): a 1250-client × 80-server fabric
// (100,000 paths) swept once through the indexed admission gate with real
// topology footprints from make_route_profiler. The point under test is the
// *scheduler's* cost model, not probe traffic, so the LaneScheduler is
// driven directly: enqueue the full matrix, then release lanes in admission
// order and let incremental wake-up refill them. The pre-index scheduler
// re-gate-tested every deferred entry on every release — Σ queued-at-release
// ≈ 5×10^9 gate tests over this sweep. The indexed gate's entire re-test
// cost is wake_tests (+ the one head test per admission), asserted from
// telemetry at ≤ 1% of that naive-scan bound, and the admission-cycle
// numbers are published to scale-admission-snapshot.json for CI.

TEST(ScaleSoak, HundredThousandPathAdmissionStaysIndexed) {
  sim::Simulator sim;
  apps::FabricOptions opt;
  opt.client_edges = 25;
  opt.clients_per_edge = 50;  // 1250 clients
  opt.server_edges = 10;
  opt.servers_per_edge = 8;   // 80 servers
  opt.install_sinks = false;  // topology only: the scheduler is the SUT
  apps::FabricTestbed bed(sim, opt);
  ASSERT_EQ(bed.path_count(), 100'000);

  const nttcp::NttcpConfig probe = soak_probe();
  auto profiler = core::make_route_profiler(bed.network(), probe);
  const double offered = probe_offered_bps();

  SchedulerConfig cfg;
  cfg.lanes = 64;
  cfg.link_disjoint = true;
  cfg.budget_bps = 66.0 * offered;  // headroom for the full lane complement
  cfg.starvation_limit_ns = Duration::sec(60).nanos();
  core::LaneScheduler sched(cfg);
  std::int64_t now = 0;
  sched.set_clock([&now] { return now; });
  obs::Registry registry;
  sched.attach_observability(registry, "sequencer");

  const auto requests =
      bed.full_matrix({core::Metric::kThroughput}, core::ProbeClass::kNormal,
                      apps::FabricTestbed::SweepOrder::kStriped);
  ASSERT_EQ(requests.size(), 100'000u);

  const auto wall0 = std::chrono::steady_clock::now();
  std::deque<core::LaneScheduler::Done> running;
  for (const core::PathRequest& req : requests) {
    core::ProbeProfile profile =
        profiler(req.path, core::Metric::kThroughput);
    profile.priority = req.priority;
    sched.enqueue(
        [&running](core::LaneScheduler::Done done) {
          running.push_back(std::move(done));
        },
        std::move(profile));
  }
  // Concurrency is capped by the fabric, not the lane count: every edge
  // routes through one designated spine, so at most ~#server-edge trunks
  // can be link-disjoint at once. The scheduler must saturate that cap.
  EXPECT_GE(sched.in_flight(), 8u);
  EXPECT_LE(sched.in_flight(), cfg.lanes);

  // Release in admission order; every release is where the old scheduler
  // paid its O(deferred × footprint) rescan, accumulated here as the bound
  // the indexed gate must beat. (Enqueue-time rescans are ignored — the
  // bound is deliberately conservative.)
  std::uint64_t naive_scan_bound = 0;
  while (!running.empty()) {
    now += Duration::ms(1).nanos();
    naive_scan_bound += sched.queued();
    auto done = std::move(running.front());
    running.pop_front();
    done();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall0)
          .count();

  sched.check_consistency();
  EXPECT_TRUE(sched.idle());
  EXPECT_EQ(sched.completed(), 100'000u);
  const core::SchedulerStats stats = sched.scheduler_stats();
  EXPECT_EQ(stats.admitted, 100'000u);

  // The headline: incremental wake-up does ≤ 1% of the work a full rescan
  // per release would have done, asserted from the new telemetry.
  ASSERT_GT(naive_scan_bound, 1'000'000'000u)
      << "sweep was not contended enough to mean anything";
  EXPECT_GT(stats.wake_tests, 0u);
  EXPECT_LE(stats.wake_tests, naive_scan_bound / 100)
      << "wake_tests " << stats.wake_tests << " vs naive bound "
      << naive_scan_bound;

  const double admissions_per_sec =
      wall_ms > 0.0 ? 100'000.0 / (wall_ms / 1000.0) : 0.0;
  std::ofstream out("scale-admission-snapshot.json");
  out << "{\n\"paths\": 100000"
      << ",\n\"admitted\": " << stats.admitted
      << ",\n\"wake_tests\": " << stats.wake_tests
      << ",\n\"futile_wakeups\": " << stats.futile_wakeups
      << ",\n\"deferred_disjoint\": " << stats.deferred_disjoint
      << ",\n\"deferred_budget\": " << stats.deferred_budget
      << ",\n\"naive_scan_bound\": " << naive_scan_bound
      << ",\n\"wake_share_of_naive\": "
      << (static_cast<double>(stats.wake_tests) /
          static_cast<double>(naive_scan_bound))
      << ",\n\"wall_ms\": " << wall_ms
      << ",\n\"admissions_per_sec\": " << admissions_per_sec
      << ",\n\"obs\": " << registry.export_json() << "\n}\n";
  ASSERT_TRUE(out.good());
}

}  // namespace
}  // namespace netmon
