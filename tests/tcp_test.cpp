#include <gtest/gtest.h>

#include <numeric>

#include "net/tcp.hpp"
#include "net/topology.hpp"

namespace netmon::net {
namespace {

using sim::Duration;

class TcpFixture : public ::testing::Test {
 protected:
  explicit TcpFixture(double bw = 10e6, Duration delay = Duration::ms(1))
      : network(sim, util::Rng(11)) {
    a = &network.add_host("a");
    b = &network.add_host("b");
    network.connect(*a, IpAddr(10, 0, 0, 1), *b, IpAddr(10, 0, 0, 2), 24, bw,
                    delay);
    network.auto_route();
  }

  // Starts a server on b:9000 that records received bytes.
  void start_server() {
    b->tcp().listen(9000, [this](std::shared_ptr<TcpConnection> conn) {
      server_conn = conn;
      conn->set_receive_handler([this](std::span<const std::byte> data) {
        received.insert(received.end(), data.begin(), data.end());
      });
      conn->set_close_handler([this] { server_saw_close = true; });
    });
  }

  sim::Simulator sim;
  Network network;
  net::Host* a;
  net::Host* b;
  std::shared_ptr<TcpConnection> server_conn;
  std::vector<std::byte> received;
  bool server_saw_close = false;
};

TEST_F(TcpFixture, HandshakeEstablishesBothEnds) {
  start_server();
  bool established = false;
  auto conn = a->tcp().connect(IpAddr(10, 0, 0, 2), 9000);
  conn->set_established_handler([&] { established = true; });
  sim.run_for(Duration::sec(1));
  EXPECT_TRUE(established);
  ASSERT_TRUE(server_conn);
  EXPECT_EQ(conn->state(), TcpConnection::State::kEstablished);
}

TEST_F(TcpFixture, ConnectToClosedPortTimesOut) {
  bool closed = false;
  auto conn = a->tcp().connect(IpAddr(10, 0, 0, 2), 9999);
  conn->set_close_handler([&] { closed = true; });
  sim.run_for(Duration::sec(120));
  EXPECT_TRUE(closed);
  EXPECT_EQ(conn->state(), TcpConnection::State::kClosed);
}

TEST_F(TcpFixture, DataArrivesInOrderAndIntact) {
  start_server();
  std::vector<std::byte> payload(50'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 31 % 251);
  }
  auto conn = a->tcp().connect(IpAddr(10, 0, 0, 2), 9000);
  conn->set_established_handler([&] { conn->send(payload); });
  sim.run_for(Duration::sec(10));
  EXPECT_EQ(received, payload);
}

TEST_F(TcpFixture, GracefulCloseReachesPeer) {
  start_server();
  auto conn = a->tcp().connect(IpAddr(10, 0, 0, 2), 9000);
  conn->set_established_handler([&] {
    conn->send_bytes(1000);
    conn->close();
  });
  sim.run_for(Duration::sec(10));
  EXPECT_EQ(received.size(), 1000u);
  EXPECT_TRUE(server_saw_close);
  EXPECT_EQ(conn->state(), TcpConnection::State::kClosed);
}

TEST_F(TcpFixture, SendAfterCloseThrows) {
  start_server();
  auto conn = a->tcp().connect(IpAddr(10, 0, 0, 2), 9000);
  conn->set_established_handler([&] {
    conn->close();
    EXPECT_THROW(conn->send_bytes(10), std::logic_error);
  });
  sim.run_for(Duration::sec(5));
}

TEST_F(TcpFixture, AbortSendsRstAndClosesPeer) {
  start_server();
  auto conn = a->tcp().connect(IpAddr(10, 0, 0, 2), 9000);
  conn->set_established_handler([&] { conn->send_bytes(100); });
  sim.run_for(Duration::sec(1));
  conn->abort();
  sim.run_for(Duration::sec(1));
  EXPECT_EQ(conn->state(), TcpConnection::State::kClosed);
  ASSERT_TRUE(server_conn);
  EXPECT_EQ(server_conn->state(), TcpConnection::State::kClosed);
}

TEST_F(TcpFixture, ThroughputApproachesLinkRate) {
  start_server();
  const std::uint64_t total = 2'000'000;
  auto conn = a->tcp().connect(IpAddr(10, 0, 0, 2), 9000);
  conn->set_established_handler([&] { conn->send_bytes(total); });
  const auto t0 = sim.now();
  sim.run_for(Duration::sec(30));
  ASSERT_EQ(received.size(), total);
  // Find completion time: all data acked.
  EXPECT_EQ(conn->counters().bytes_acked, total);
  const double elapsed = (sim.now() - t0).to_seconds();
  (void)elapsed;
  // Goodput over the run must be a sane fraction of the 10 Mb/s link.
  const double goodput =
      static_cast<double>(conn->counters().bytes_acked) * 8.0;
  EXPECT_GT(goodput / 30.0, 0.2e6);  // loose lower bound over full window
}

class LossyTcpFixture : public TcpFixture {
 protected:
  // Tiny queues at 10 Mb/s with a fat sender window force drops.
  LossyTcpFixture() : TcpFixture(2e6, Duration::ms(5)) {}
};

TEST_F(LossyTcpFixture, RecoversFromLossViaRetransmission) {
  start_server();
  std::vector<std::byte> payload(300'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>((i * 7 + 3) % 251);
  }
  auto conn = a->tcp().connect(IpAddr(10, 0, 0, 2), 9000);
  conn->set_established_handler([&] { conn->send(payload); });
  sim.run_for(Duration::sec(60));
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
  // The 64-frame NIC queue cannot absorb slow-start bursts: loss happened.
  EXPECT_GT(conn->counters().retransmissions, 0u);
}

TEST_F(TcpFixture, RttEstimateTracksPathDelay) {
  start_server();
  auto conn = a->tcp().connect(IpAddr(10, 0, 0, 2), 9000);
  conn->set_established_handler([&] { conn->send_bytes(30'000); });
  sim.run_for(Duration::sec(10));
  // One-way delay 1 ms => RTT >= 2 ms; serialization adds more.
  EXPECT_GE(conn->smoothed_rtt_seconds(), 0.002);
  EXPECT_LT(conn->smoothed_rtt_seconds(), 0.2);
}

TEST_F(TcpFixture, CongestionWindowGrowsFromSlowStart) {
  start_server();
  auto conn = a->tcp().connect(IpAddr(10, 0, 0, 2), 9000);
  const double initial_cwnd = conn->congestion_window();
  conn->set_established_handler([&] { conn->send_bytes(500'000); });
  sim.run_for(Duration::sec(10));
  EXPECT_GT(conn->congestion_window(), initial_cwnd);
}

TEST_F(TcpFixture, TwoSimultaneousConnectionsStayIsolated) {
  std::vector<std::byte> rx1, rx2;
  b->tcp().listen(9001, [&](std::shared_ptr<TcpConnection> conn) {
    conn->set_receive_handler([&rx1, conn](std::span<const std::byte> d) {
      rx1.insert(rx1.end(), d.begin(), d.end());
    });
  });
  b->tcp().listen(9002, [&](std::shared_ptr<TcpConnection> conn) {
    conn->set_receive_handler([&rx2, conn](std::span<const std::byte> d) {
      rx2.insert(rx2.end(), d.begin(), d.end());
    });
  });
  auto c1 = a->tcp().connect(IpAddr(10, 0, 0, 2), 9001);
  auto c2 = a->tcp().connect(IpAddr(10, 0, 0, 2), 9002);
  std::vector<std::byte> ones(10'000, std::byte{1});
  std::vector<std::byte> twos(20'000, std::byte{2});
  c1->set_established_handler([&] { c1->send(ones); });
  c2->set_established_handler([&] { c2->send(twos); });
  sim.run_for(Duration::sec(20));
  EXPECT_EQ(rx1, ones);
  EXPECT_EQ(rx2, twos);
}

TEST_F(TcpFixture, ListenTwiceThrows) {
  b->tcp().listen(9000, [](std::shared_ptr<TcpConnection>) {});
  EXPECT_THROW(b->tcp().listen(9000, [](std::shared_ptr<TcpConnection>) {}),
               std::logic_error);
  b->tcp().stop_listening(9000);
  EXPECT_NO_THROW(b->tcp().listen(9000, [](std::shared_ptr<TcpConnection>) {}));
}

TEST_F(TcpFixture, ConnectionsRemovedAfterClose) {
  start_server();
  auto conn = a->tcp().connect(IpAddr(10, 0, 0, 2), 9000);
  conn->set_established_handler([&] { conn->close(); });
  sim.run_for(Duration::sec(30));
  EXPECT_EQ(a->tcp().active_connections(), 0u);
}

}  // namespace
}  // namespace netmon::net
