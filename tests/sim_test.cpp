#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace netmon::sim {
namespace {

TEST(Duration, ArithmeticAndConversions) {
  const auto d = Duration::ms(30);
  EXPECT_EQ(d.nanos(), 30'000'000);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 0.030);
  EXPECT_DOUBLE_EQ(d.to_millis(), 30.0);
  EXPECT_EQ((d + Duration::ms(10)).nanos(), 40'000'000);
  EXPECT_EQ((d - Duration::ms(40)).nanos(), -10'000'000);
  EXPECT_TRUE((d - Duration::ms(40)).is_negative());
  EXPECT_EQ((d * 3).nanos(), 90'000'000);
  EXPECT_DOUBLE_EQ(Duration::sec(1) / Duration::ms(250), 4.0);
}

TEST(Duration, ToStringPicksUnit) {
  EXPECT_EQ(Duration::sec(2).to_string(), "2s");
  EXPECT_EQ(Duration::ms(5).to_string(), "5ms");
  EXPECT_EQ(Duration::us(7).to_string(), "7us");
  EXPECT_EQ(Duration::ns(3).to_string(), "3ns");
}

TEST(TimePoint, Arithmetic) {
  const auto t = TimePoint::from_nanos(1'000'000'000);
  EXPECT_EQ((t + Duration::sec(1)).nanos(), 2'000'000'000);
  EXPECT_EQ((t - TimePoint::from_nanos(250'000'000)).nanos(), 750'000'000);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(Duration::ms(20), [&] { order.push_back(2); });
  sim.schedule_in(Duration::ms(10), [&] { order.push_back(1); });
  sim.schedule_in(Duration::ms(30), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().nanos(), Duration::ms(30).nanos());
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_in(Duration::ms(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, TimeNeverDecreasesAcrossNestedScheduling) {
  Simulator sim;
  TimePoint last{};
  bool monotone = true;
  std::function<void(int)> recurse = [&](int depth) {
    if (sim.now() < last) monotone = false;
    last = sim.now();
    if (depth > 0) {
      sim.schedule_in(Duration::us(depth),
                      [&recurse, depth] { recurse(depth - 1); });
    }
  };
  recurse(50);
  sim.run();
  EXPECT_TRUE(monotone);
}

TEST(Simulator, SchedulePastThrows) {
  Simulator sim;
  sim.schedule_in(Duration::ms(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::from_nanos(0), [] {}),
               std::logic_error);
  EXPECT_THROW(sim.schedule_in(Duration::ms(-1), [] {}), std::logic_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_in(Duration::ms(1), [&] { ++fired; });
  handle.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Duration::ms(10), [&] { ++fired; });
  sim.schedule_in(Duration::ms(30), [&] { ++fired; });
  sim.run_until(TimePoint::from_nanos(Duration::ms(20).nanos()));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().nanos(), Duration::ms(20).nanos());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopAbortsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Duration::ms(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(Duration::ms(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes with remaining events
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PeriodicFiresAtFixedIntervals) {
  Simulator sim;
  std::vector<std::int64_t> times;
  auto handle = sim.schedule_periodic(Duration::ms(10), [&] {
    times.push_back(sim.now().nanos());
    if (times.size() == 3) sim.stop();
  });
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], Duration::ms(10).nanos());
  EXPECT_EQ(times[1], Duration::ms(20).nanos());
  EXPECT_EQ(times[2], Duration::ms(30).nanos());
  handle.cancel();
}

TEST(Simulator, PeriodicCancelStopsChain) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_periodic(Duration::ms(1), [&] { ++fired; });
  sim.schedule_in(Duration::ms(5) + Duration::us(500),
                  [&] { handle.cancel(); });
  sim.run_for(Duration::ms(50));
  EXPECT_EQ(fired, 5);
}

TEST(Simulator, PeriodicZeroPeriodRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_periodic(Duration::ns(0), [] {}),
               std::logic_error);
}

TEST(PeriodicTask, CancelsOnDestruction) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTask task(sim, Duration::ms(1), [&] { ++fired; });
    sim.run_for(Duration::ms(3));
  }
  sim.run_for(Duration::ms(10));
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTask, MoveTransfersOwnership) {
  Simulator sim;
  int fired = 0;
  PeriodicTask outer;
  {
    PeriodicTask inner(sim, Duration::ms(1), [&] { ++fired; });
    outer = std::move(inner);
  }  // inner destroyed; task must survive
  sim.run_for(Duration::ms(3));
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, EventLimitBoundsExecution) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    sim.schedule_in(Duration::ms(1), chain);
  };
  sim.schedule_in(Duration::ms(1), chain);
  sim.run(10);
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, DeterministicReplay) {
  auto run_once = [] {
    Simulator sim;
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 20; ++i) {
      sim.schedule_in(Duration::us(100 * ((i * 7) % 5 + 1)),
                      [&trace, &sim] { trace.push_back(sim.now().nanos()); });
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace netmon::sim
