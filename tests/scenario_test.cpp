// Deterministic scenario harness (paper §5.1): the 9×3 RTDS path matrix
// monitored by the sequenced high-fidelity monitor under three fault plans,
// with the §4.4 evaluation criteria asserted from *measured* telemetry:
//
//   * senescence — the per-path inter-sample interval recorded by the
//     measurement database must stay within the paper's C·S·T bound, where
//     T is itself measured (the sequencer's longest slot hold);
//   * intrusiveness — the monitoring bytes/s metered on the wire must stay
//     within L/P (§5.1.2.3: 8192 bytes per 30 ms ≈ 2.18 Mb/s) for the
//     sequenced monitor, while the naive parallel monitor shows the
//     C·S·L/P (≈ 59 Mb/s) burst the sequencer exists to prevent.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/testbed.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "obs/intrusiveness.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace netmon {
namespace {

using core::Metric;
using sim::Duration;

constexpr int kClients = 9;
constexpr int kServers = 3;
constexpr std::uint32_t kMessageLength = 8192;         // L (paper §5.1.2.3)
constexpr auto kInterSend = Duration::ms(30);          // P
constexpr std::uint32_t kMessageCount = 8;
constexpr double kNominalBps = kMessageLength * 8.0 * 1000.0 / 30.0;  // L/P

core::HighFidelityMonitor::Config monitor_config(std::size_t concurrency) {
  core::HighFidelityMonitor::Config cfg;
  cfg.probe.message_length = kMessageLength;
  cfg.probe.inter_send = kInterSend;
  cfg.probe.message_count = kMessageCount;
  cfg.probe.result_timeout = Duration::sec(1);
  cfg.max_concurrent = concurrency;
  // A crashed target must not wedge the sequencer longer than the deadline.
  cfg.supervision.deadline = Duration::ms(1500);
  return cfg;
}

// One scenario: a name plus the fault plan it runs under. Link names come
// from Network::attach ("<host><->backbone").
struct Scenario {
  const char* name;
  fault::FaultPlan plan;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;

  fault::FaultPlan flap;
  flap.seed = 11;
  flap.link_flap(Duration::sec(5), "client2<->backbone", 3, Duration::ms(200),
                 Duration::ms(800));
  out.push_back(Scenario{"link-flap", flap});

  fault::FaultPlan chaos;
  chaos.seed = 22;
  chaos.packet_chaos(Duration::sec(4), "server1<->backbone", Duration::sec(5),
                     0.2, 0.05, Duration::ms(2));
  out.push_back(Scenario{"packet-chaos", chaos});

  fault::FaultPlan crash;
  crash.seed = 33;
  crash.host_crash(Duration::sec(4), "client5");
  crash.host_restart(Duration::sec(8), "client5");
  out.push_back(Scenario{"host-crash", crash});

  return out;
}

const obs::SnapshotEntry* find_entry(
    const std::vector<obs::SnapshotEntry>& snapshot, const std::string& name) {
  for (const auto& e : snapshot) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

// Full scenario run: sequenced monitor, continuous rounds over the 27-path
// matrix, telemetry attached, the plan armed at t=0.
struct RunResult {
  std::vector<obs::SnapshotEntry> snapshot;
  double monitoring_peak_bps = 0.0;
  std::uint64_t tuples = 0;
  std::uint64_t fault_records = 0;
};

RunResult run_scenario(const fault::FaultPlan& plan) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = kServers;
  options.clients = kClients;
  apps::Testbed bed(sim, options);

  // The registry must outlive everything attached to it (components detach
  // themselves in their destructors).
  obs::Registry registry;
  core::HighFidelityMonitor monitor(bed.network(), monitor_config(1));
  monitor.director().attach_observability(registry, "hfm");
  obs::IntrusivenessMeter meter(sim, bed.network(), registry,
                                "net.intrusiveness", Duration::ms(300));

  fault::FaultInjector injector(sim);
  for (const auto& link : bed.network().links()) {
    injector.register_link(link->name(), *link);
  }
  for (const auto& host : bed.network().hosts()) {
    injector.register_host(host->name(), *host);
  }
  injector.arm(plan);

  core::MonitorRequest request;
  request.paths = bed.full_matrix({Metric::kThroughput});
  request.mode = core::MonitorRequest::Mode::kContinuous;

  RunResult result;
  monitor.director().submit(
      request, [&](const core::PathMetricTuple&) { ++result.tuples; });
  sim.run_for(Duration::sec(30));

  // Age-at-read telemetry: consult every series once so the senescence the
  // manager would experience lands in the histogram.
  for (int s = 0; s < kServers; ++s) {
    for (int c = 0; c < kClients; ++c) {
      (void)monitor.database().current(bed.path(s, c), Metric::kThroughput,
                                       sim.now(), Duration::sec(3600));
    }
  }

  // Accounting must balance even across timeouts and dead targets.
  monitor.director().sequencer().check_consistency();

  // The fault log is timestamp-monotone by contract.
  const auto& log = injector.log();
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].at.nanos(), log[i].at.nanos());
  }
  result.fault_records = log.size();

  result.monitoring_peak_bps = meter.peak_bps(net::TrafficClass::kMonitoring);
  result.snapshot = registry.snapshot();
  return result;
}

TEST(ScenarioMatrix, PaperBoundsHoldUnderEveryFaultPlan) {
  if constexpr (!obs::kCompiledIn) {
    GTEST_SKIP() << "bounds are asserted from registry telemetry, which "
                    "NETMON_OBS=OFF compiles out";
  }
  for (const Scenario& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    const RunResult r = run_scenario(scenario.plan);

    ASSERT_GT(r.tuples, 0u);
    EXPECT_GT(r.fault_records, 0u);

    // --- senescence ≤ C·S·T (paper §5.1.3), T measured ---------------------
    const auto* hold = find_entry(r.snapshot, "hfm.sequencer.slot_hold_ns");
    const auto* interval =
        find_entry(r.snapshot, "hfm.db.sample_interval_ns");
    const auto* age = find_entry(r.snapshot, "hfm.db.age_at_read_ns");
    ASSERT_NE(hold, nullptr);
    ASSERT_NE(interval, nullptr);
    ASSERT_NE(age, nullptr);
    ASSERT_GT(hold->count, 0u);
    ASSERT_GT(interval->count, 0u);

    // T: longest single sample, start to finish, as the sequencer held its
    // slot. With one slot, a path waits at most C·S jobs per cycle; 1.25
    // covers scheduling gaps between jobs.
    const double T_ns = hold->max;
    const double bound_ns = kClients * kServers * T_ns * 1.25;
    EXPECT_LE(interval->max, bound_ns)
        << "inter-sample interval " << interval->max / 1e9
        << " s exceeds C*S*T = " << bound_ns / 1e9 << " s";
    // What a reader sees can lag at most one full cycle.
    EXPECT_LE(age->max, bound_ns);

    // --- intrusiveness ≤ L/P (paper §5.1.2.3) ------------------------------
    // The sequenced monitor never exceeds one burst at a time: ~2.18 Mb/s
    // nominal; 1.5 covers wire overheads (fragment headers, result
    // exchange) and tick quantization.
    EXPECT_GT(r.monitoring_peak_bps, 0.0);
    EXPECT_LE(r.monitoring_peak_bps, kNominalBps * 1.5)
        << "sequenced monitoring peak " << r.monitoring_peak_bps / 1e6
        << " Mb/s exceeds L/P = " << kNominalBps / 1e6 << " Mb/s";

    // Telemetry share: the meter's view of monitoring vs application load.
    const auto* share = find_entry(r.snapshot, "net.intrusiveness.monitoring_share");
    ASSERT_NE(share, nullptr);
    EXPECT_GT(share->value, 0.0);
    EXPECT_LE(share->value, 1.0);
  }
}

// Paper §5.1.2.3 / §5.1.3 contrast, reproduced as measured quantities: one
// round of the 27-path matrix fully parallel versus sequenced. Parallel
// peaks near C·S·L/P (≈ 59 Mb/s); the sequencer holds the same matrix to
// L/P (≈ 2.18 Mb/s).
double one_round_peak_bps(std::size_t concurrency) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = kServers;
  options.clients = kClients;
  apps::Testbed bed(sim, options);
  obs::Registry registry;
  core::HighFidelityMonitor monitor(bed.network(),
                                    monitor_config(concurrency));
  obs::IntrusivenessMeter meter(sim, bed.network(), registry,
                                "net.intrusiveness", Duration::ms(100));

  core::MonitorRequest request;
  request.paths = bed.full_matrix({Metric::kThroughput});
  request.mode = core::MonitorRequest::Mode::kOnce;
  monitor.director().submit(request, nullptr);
  sim.run_for(Duration::sec(30));
  EXPECT_EQ(monitor.director().stats().rounds_completed, 1u);
  return meter.peak_bps(net::TrafficClass::kMonitoring);
}

TEST(ScenarioMatrix, SequencerTradesParallelBurstForBoundedLoad) {
  const double parallel = one_round_peak_bps(core::TestSequencer::kUnlimited);
  const double sequenced = one_round_peak_bps(1);

  // Parallel: every path bursts at once — the C·S multiplier must show.
  EXPECT_GT(parallel, 10.0 * kNominalBps);
  EXPECT_LE(parallel, kClients * kServers * kNominalBps * 1.5);

  // Sequenced: bounded by a single burst.
  EXPECT_GT(sequenced, 0.0);
  EXPECT_LE(sequenced, kNominalBps * 1.5);

  // The ratio is the paper's 59 : 2.18 story.
  EXPECT_GT(parallel / sequenced, 8.0);
}

}  // namespace
}  // namespace netmon
