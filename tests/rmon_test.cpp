#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "rmon/probe.hpp"
#include "snmp/manager.hpp"

namespace netmon::rmon {
namespace {

using sim::Duration;

class ProbeFixture : public ::testing::Test {
 protected:
  ProbeFixture() {
    apps::SharedLanOptions options;
    options.hosts = 3;
    options.clocks.granularity = Duration::ms(10);  // COTS-grade probe clock
    bed = std::make_unique<apps::SharedLanTestbed>(sim, options);
    probe = std::make_unique<Probe>(bed->probe_host(), bed->segment());
  }

  void blast(int packets, std::uint32_t bytes = 400) {
    if (blast_socket_ == nullptr) {
      blast_socket_ = &bed->host(0).udp().bind(0, nullptr);
      bed->host(1).udp().bind(7000, nullptr);
    }
    auto& sock = *blast_socket_;
    for (int i = 0; i < packets; ++i) {
      sock.send_to(bed->host_ip(1), 7000, bytes, nullptr,
                   net::TrafficClass::kApplication);
    }
    // The probe keeps periodic tasks alive; a bounded run drains the blast.
    sim.run_for(sim::Duration::sec(2));
  }

  sim::Simulator sim;
  std::unique_ptr<apps::SharedLanTestbed> bed;
  std::unique_ptr<Probe> probe;
  net::UdpSocket* blast_socket_ = nullptr;
};

TEST_F(ProbeFixture, CountsAllSegmentTraffic) {
  blast(25);
  // 25 data frames, plus their delivery is all the probe sees (no ACKs on
  // UDP). RMON counts frames promiscuously.
  EXPECT_GE(probe->ether_stats().packets, 25u);
  EXPECT_GT(probe->ether_stats().octets, 25u * 400u);
}

TEST_F(ProbeFixture, SizeHistogramBucketsCorrectly) {
  blast(5, 400);   // 400+28+18 = 446 -> 256..511 bucket
  blast(5, 1400);  // 1446 -> 1024..1518 bucket
  EXPECT_GE(probe->ether_stats().pkts_256_511, 5u);
  EXPECT_GE(probe->ether_stats().pkts_1024_1518, 5u);
}

TEST_F(ProbeFixture, TracksFramesBySourceMac) {
  blast(10);
  const auto src_mac = bed->host(0).nic(0).mac();
  EXPECT_EQ(probe->frames_seen_from(src_mac), 10u);
  EXPECT_EQ(probe->frames_seen_from(net::MacAddr(0x1234)), 0u);
}

TEST_F(ProbeFixture, UtilizationWindowTracksLoad) {
  bed->host(1).udp().bind(7001, nullptr);
  apps::CbrTraffic::Config cfg;
  cfg.rate_bps = 4e6;
  cfg.packet_bytes = 1000;
  cfg.dst_port = 7001;
  apps::CbrTraffic cbr(bed->host(0), bed->host_ip(1), cfg);
  cbr.start();
  sim.run_for(Duration::sec(3));
  cbr.stop();
  EXPECT_GT(probe->windowed_utilization(), 0.30);
  EXPECT_LT(probe->windowed_utilization(), 0.60);
}

TEST_F(ProbeFixture, StatsExposedThroughSnmpAgent) {
  blast(10);
  snmp::Manager manager(bed->station());
  snmp::SnmpResult result;
  manager.get(bed->probe_host().primary_ip(),
              {rmon_mib::kEtherStatsPkts, rmon_mib::kEtherStatsOctets},
              [&](const snmp::SnmpResult& r) { result = r; });
  // Bounded run: the probe's periodic sampling keeps the event queue alive.
  sim.run_for(Duration::sec(2));
  ASSERT_TRUE(result.ok);
  EXPECT_GE(result.varbinds[0].value.to_uint64(), 10u);
}

TEST_F(ProbeFixture, HistoryBucketsRollAtInterval) {
  auto& history = probe->add_history(Duration::ms(500), 4);
  bed->host(1).udp().bind(7001, nullptr);
  apps::CbrTraffic::Config cfg;
  cfg.rate_bps = 2e6;
  cfg.packet_bytes = 500;
  cfg.dst_port = 7001;
  apps::CbrTraffic cbr(bed->host(0), bed->host_ip(1), cfg);
  cbr.start();
  sim.run_for(Duration::sec(3));
  cbr.stop();
  EXPECT_EQ(history.intervals_completed(), 6u);
  EXPECT_EQ(history.buckets().size(), 4u);  // ring keeps only 4
  const auto& bucket = history.buckets().newest();
  EXPECT_GT(bucket.packets, 0u);
  EXPECT_NEAR(bucket.utilization, 0.22, 0.12);  // ~2.2 Mb/s on 10 Mb/s wire
}

TEST(HistoryLongTerm, FactorRollupAggregatesBaseBuckets) {
  // Synthetic sources so every base interval's content is exact: interval k
  // (1-based) carries k packets of 100 octets -> utilization 0.1*k on an
  // 8 kb/s medium. Factor 4, depth 2: after 12 intervals the ring holds the
  // rollups of intervals 5..8 and 9..12.
  sim::Simulator sim;
  std::uint64_t packets = 0;
  std::uint64_t octets = 0;
  std::uint64_t broadcasts = 0;
  HistoryGroup::Sources sources;
  sources.packets = [&] { return packets; };
  sources.octets = [&] { return octets; };
  sources.broadcasts = [&] { return broadcasts; };
  sources.local_clock = [&] { return sim.now(); };
  sources.bandwidth_bps = 8000.0;
  HistoryGroup history(sim, Duration::sec(1), 8, sources,
                       /*long_term_factor=*/4, /*long_term_buckets=*/2);
  for (int k = 1; k <= 12; ++k) {
    sim.schedule_in(Duration::ms(k * 1000 - 500), [&, k] {
      packets += static_cast<std::uint64_t>(k);
      octets += static_cast<std::uint64_t>(k) * 100;
      ++broadcasts;
    });
  }
  sim.run_for(Duration::sec(12));
  history.stop();

  EXPECT_EQ(history.intervals_completed(), 12u);
  const auto* lt = history.long_term();
  ASSERT_NE(lt, nullptr);
  ASSERT_EQ(lt->size(), 2u);  // rollup of 1..4 was overwritten

  const LongTermBucket& mid = lt->oldest();  // intervals 5..8
  EXPECT_EQ(mid.intervals, 4u);
  EXPECT_EQ(mid.packets, 26u);  // 5+6+7+8
  EXPECT_EQ(mid.octets, 2600u);
  EXPECT_EQ(mid.broadcast_pkts, 4u);
  EXPECT_NEAR(mid.min_utilization, 0.5, 1e-9);
  EXPECT_NEAR(mid.max_utilization, 0.8, 1e-9);
  EXPECT_NEAR(mid.mean_utilization, 0.65, 1e-9);

  const LongTermBucket& last = lt->newest();  // intervals 9..12
  EXPECT_EQ(last.intervals, 4u);
  EXPECT_EQ(last.packets, 42u);
  EXPECT_EQ(last.octets, 4200u);
  EXPECT_NEAR(last.min_utilization, 0.9, 1e-9);
  EXPECT_NEAR(last.max_utilization, 1.2, 1e-9);
  EXPECT_NEAR(last.mean_utilization, 1.05, 1e-9);
  // The coarse bucket starts where its first base interval started.
  EXPECT_EQ(last.start_local.nanos(), 8'000'000'000);
}

TEST(HistoryLongTerm, DisabledTierIsNullAndInvalidConfigRejected) {
  sim::Simulator sim;
  HistoryGroup::Sources sources;
  sources.packets = [] { return std::uint64_t{0}; };
  sources.octets = [] { return std::uint64_t{0}; };
  sources.local_clock = [&] { return sim.now(); };
  HistoryGroup plain(sim, Duration::sec(1), 4, sources);
  EXPECT_EQ(plain.long_term(), nullptr);
  plain.stop();
  EXPECT_THROW(HistoryGroup(sim, Duration::sec(1), 4, sources, 1, 2),
               std::invalid_argument);  // factor must be >= 2
  EXPECT_THROW(HistoryGroup(sim, Duration::sec(1), 4, sources, 4, 0),
               std::invalid_argument);  // depth must be >= 1
}

TEST_F(ProbeFixture, ProbeHistoryCanCarryLongTermTier) {
  // The probe-level wiring: a short-interval row with a long-term tier
  // folding every 2 base intervals, fed by real segment traffic.
  auto& history = probe->add_history(Duration::ms(500), 4,
                                     /*long_term_factor=*/2,
                                     /*long_term_buckets=*/4);
  blast(20);  // runs the sim for 2 s -> 4 base intervals -> 2 coarse buckets
  const auto* lt = history.long_term();
  ASSERT_NE(lt, nullptr);
  ASSERT_GE(lt->size(), 1u);
  std::uint64_t base_packets = 0;
  for (std::size_t i = 0; i < history.buckets().size(); ++i) {
    base_packets += history.buckets()[i].packets;
  }
  std::uint64_t coarse_packets = 0;
  for (std::size_t i = 0; i < lt->size(); ++i) {
    coarse_packets += (*lt)[i].packets;
    EXPECT_EQ((*lt)[i].intervals, 2u);
    EXPECT_LE((*lt)[i].min_utilization, (*lt)[i].mean_utilization);
    EXPECT_LE((*lt)[i].mean_utilization, (*lt)[i].max_utilization);
  }
  // Every frame the base tier saw is represented exactly once in the coarse
  // tier (base depth 4 = factor x depth covers the same horizon here).
  EXPECT_EQ(coarse_packets, base_packets);
  EXPECT_GT(coarse_packets, 0u);
}

TEST_F(ProbeFixture, HistoryTimestampsUseGranularClock) {
  auto& history = probe->add_history(Duration::ms(500), 8);
  sim.run_for(Duration::sec(2));
  for (std::size_t i = 0; i < history.buckets().size(); ++i) {
    // 10 ms probe clock: all bucket timestamps are multiples of 10 ms.
    EXPECT_EQ(history.buckets()[i].start_local.nanos() % 10'000'000, 0);
  }
}

TEST_F(ProbeFixture, ProbeRequiresAttachment) {
  apps::SharedLanOptions options;
  options.hosts = 1;
  options.add_probe_host = false;
  sim::Simulator other_sim;
  apps::SharedLanTestbed other(other_sim, options);
  // Host 0 of `other` is not on *our* segment.
  EXPECT_THROW(Probe(other.host(0), bed->segment()), std::invalid_argument);
}

// --- alarms -----------------------------------------------------------------

TEST(Alarm, RisingAndFallingWithHysteresis) {
  sim::Simulator sim;
  double value = 0.0;
  std::vector<AlarmDirection> events;
  AlarmConfig cfg;
  cfg.sample = [&] { return value; };
  cfg.sample_type = SampleType::kAbsolute;
  cfg.interval = Duration::ms(100);
  cfg.rising_threshold = 10.0;
  cfg.falling_threshold = 5.0;
  Alarm alarm(sim, 1, cfg, [&](const AlarmCrossing& c) {
    events.push_back(c.direction);
  });

  // Drive the value through: up, stay up (no repeat), down, up again.
  sim.schedule_in(Duration::ms(150), [&] { value = 12.0; });
  sim.schedule_in(Duration::ms(350), [&] { value = 15.0; });  // still high
  sim.schedule_in(Duration::ms(550), [&] { value = 3.0; });
  sim.schedule_in(Duration::ms(750), [&] { value = 20.0; });
  sim.run_for(Duration::sec(1));
  alarm.stop();

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], AlarmDirection::kRising);
  EXPECT_EQ(events[1], AlarmDirection::kFalling);
  EXPECT_EQ(events[2], AlarmDirection::kRising);
  EXPECT_EQ(alarm.rising_events(), 2u);
  EXPECT_EQ(alarm.falling_events(), 1u);
}

TEST(Alarm, EventsAlternateUnderNoise) {
  // Property: rising and falling events strictly alternate no matter how
  // the sampled variable jitters (RMON hysteresis invariant).
  sim::Simulator sim;
  util::Rng rng(77);
  double value = 0.0;
  std::vector<AlarmDirection> events;
  AlarmConfig cfg;
  cfg.sample = [&] { return value; };
  cfg.sample_type = SampleType::kAbsolute;
  cfg.interval = Duration::ms(10);
  cfg.rising_threshold = 6.0;
  cfg.falling_threshold = 4.0;
  Alarm alarm(sim, 1, cfg, [&](const AlarmCrossing& c) {
    events.push_back(c.direction);
  });
  for (int i = 0; i < 500; ++i) {
    sim.schedule_in(Duration::ms(10 * i + 5),
                    [&value, &rng] { value = rng.uniform(0.0, 10.0); });
  }
  sim.run_for(Duration::sec(6));
  alarm.stop();
  ASSERT_GT(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_NE(events[i], events[i - 1]) << "at event " << i;
  }
}

TEST(Alarm, DeltaSamplingNeedsTwoSamples) {
  sim::Simulator sim;
  double counter = 0.0;
  int fired = 0;
  AlarmConfig cfg;
  cfg.sample = [&] { return counter; };
  cfg.sample_type = SampleType::kDelta;
  cfg.interval = Duration::ms(100);
  cfg.rising_threshold = 50.0;
  cfg.falling_threshold = 10.0;
  Alarm alarm(sim, 1, cfg, [&](const AlarmCrossing&) { ++fired; });
  // Counter grows by 100 every interval: delta = 100 >= 50 from the second
  // sample onwards, but hysteresis allows only one rising event.
  sim.schedule_periodic(Duration::ms(100), [&] { counter += 100.0; });
  sim.run_for(Duration::sec(1));
  alarm.stop();
  EXPECT_EQ(fired, 1);
}

TEST(Alarm, InvalidConfigRejected) {
  sim::Simulator sim;
  AlarmConfig no_sampler;
  no_sampler.rising_threshold = 1.0;
  EXPECT_THROW(Alarm(sim, 1, no_sampler, nullptr), std::invalid_argument);
  AlarmConfig inverted;
  inverted.sample = [] { return 0.0; };
  inverted.rising_threshold = 1.0;
  inverted.falling_threshold = 2.0;
  EXPECT_THROW(Alarm(sim, 1, inverted, nullptr), std::invalid_argument);
}

TEST_F(ProbeFixture, UtilizationAlarmSendsTrapToStation) {
  snmp::Manager manager(bed->station());
  std::vector<snmp::TrapEvent> traps;
  manager.set_trap_handler(
      [&](const snmp::TrapEvent& t) { traps.push_back(t); });

  AlarmConfig cfg;
  cfg.sample = probe->sample_utilization();
  cfg.sample_type = SampleType::kAbsolute;
  cfg.interval = Duration::ms(500);
  cfg.rising_threshold = 0.2;
  cfg.falling_threshold = 0.05;
  probe->add_alarm(cfg, bed->station().primary_ip());

  bed->host(1).udp().bind(7001, nullptr);
  apps::CbrTraffic::Config traffic;
  traffic.rate_bps = 5e6;
  traffic.packet_bytes = 1000;
  traffic.dst_port = 7001;
  apps::CbrTraffic cbr(bed->host(0), bed->host_ip(1), traffic);
  cbr.start();
  sim.run_for(Duration::sec(3));
  cbr.stop();
  sim.run_for(Duration::sec(3));  // quiesce -> falling trap

  ASSERT_GE(traps.size(), 2u);
  EXPECT_EQ(traps.front().trap_oid, rmon_mib::kRisingAlarmTrap);
  EXPECT_EQ(traps.back().trap_oid, rmon_mib::kFallingAlarmTrap);
}

// --- filter/capture groups ---------------------------------------------------

TEST(PacketFilter, ConjunctiveMatching) {
  net::Packet p;
  p.src = net::IpAddr(10, 0, 0, 1);
  p.dst = net::IpAddr(10, 0, 0, 2);
  p.protocol = net::IpProto::kUdp;
  p.dst_port = 7000;
  p.payload_bytes = 100;
  p.traffic_class = net::TrafficClass::kApplication;
  const net::Frame frame{net::MacAddr(1), net::MacAddr(2), p};

  PacketFilter any;
  EXPECT_TRUE(any.matches(frame));
  EXPECT_EQ(any.describe(), "any");

  PacketFilter exact;
  exact.src = net::IpAddr(10, 0, 0, 1);
  exact.dst_port = 7000;
  exact.protocol = net::IpProto::kUdp;
  EXPECT_TRUE(exact.matches(frame));
  exact.dst_port = 7001;
  EXPECT_FALSE(exact.matches(frame));

  PacketFilter size;
  size.min_size_bytes = 100;
  size.max_size_bytes = 200;
  EXPECT_TRUE(size.matches(frame));  // 100+28+18=146
  size.max_size_bytes = 120;
  EXPECT_FALSE(size.matches(frame));
}

TEST_F(ProbeFixture, CaptureChannelCollectsMatchingFrames) {
  PacketFilter filter;
  filter.dst = bed->host_ip(1);
  auto& channel = probe->add_capture(filter, 16);
  channel.start();
  blast(10);
  EXPECT_EQ(channel.accepted(), 10u);
  EXPECT_EQ(channel.buffer().size(), 10u);
  const auto& rec = channel.buffer().newest();
  EXPECT_EQ(rec.dst_ip, bed->host_ip(1));
  EXPECT_EQ(rec.src_mac, bed->host(0).nic(0).mac());
}

TEST_F(ProbeFixture, CaptureStopsWhenFull) {
  auto& channel = probe->add_capture(PacketFilter{}, 4, /*stop_when_full=*/true);
  channel.start();
  blast(10);
  EXPECT_EQ(channel.state(), CaptureChannel::State::kFull);
  EXPECT_EQ(channel.buffer().size(), 4u);
  EXPECT_GT(channel.dropped_full(), 0u);
  channel.clear();
  EXPECT_EQ(channel.state(), CaptureChannel::State::kIdle);
}

TEST_F(ProbeFixture, CaptureWrapsWhenConfigured) {
  auto& channel =
      probe->add_capture(PacketFilter{}, 4, /*stop_when_full=*/false);
  channel.start();
  blast(10);
  EXPECT_EQ(channel.buffer().size(), 4u);
  EXPECT_EQ(channel.accepted(), 10u);
  EXPECT_EQ(channel.state(), CaptureChannel::State::kCapturing);
}

TEST_F(ProbeFixture, ArmedChannelWaitsForTrigger) {
  auto& channel = probe->add_capture(PacketFilter{}, 16);
  channel.arm();
  blast(5);
  EXPECT_EQ(channel.accepted(), 0u);  // armed, not yet triggered
  EXPECT_GT(channel.matched(), 0u);
  channel.trigger();
  blast(5);
  EXPECT_EQ(channel.accepted(), 5u);
}

TEST_F(ProbeFixture, CaptureDownloadCostsManagementBytes) {
  auto& channel = probe->add_capture(PacketFilter{}, 128);
  channel.start();
  blast(50);
  const auto before = bed->network().octets_by_class()[
      static_cast<std::size_t>(net::TrafficClass::kManagement)];
  std::size_t downloaded = 0;
  probe->download_capture(channel, bed->station().primary_ip(),
                          [&](std::size_t n) { downloaded = n; });
  sim.run_for(Duration::sec(1));
  const auto after = bed->network().octets_by_class()[
      static_cast<std::size_t>(net::TrafficClass::kManagement)];
  EXPECT_EQ(downloaded, channel.buffer().size());
  EXPECT_GT(after, before + downloaded * 40);
}

}  // namespace
}  // namespace netmon::rmon
