// Differential model test for the indexed admission gate (DESIGN.md §15):
// random submit / complete / abandon streams — 2 × 50k ops, different
// configs and seeds — run against both core::LaneScheduler (indexed
// occupancy map, per-class waiter heaps with baton-passed wakes, budget
// watermark heap) and a naive full-scan reference that re-gate-tests EVERY
// waiting entry in seq order on every admission pass, exactly the
// pre-index semantics. Same seed must yield the identical admission trace
// (admit_seq, at_ns, entry_seq, tag, priority, offered_bps,
// in_flight_after, lane) and identical SchedulerStats, in the spirit of
// the timer/db model harnesses.
//
// The reference deliberately re-tests parked entries too: if the indexed
// scheduler ever leaves an entry parked while its gates would actually
// pass (a missed or dropped wake-up — the baton machinery's failure mode),
// the reference admits it and the traces diverge. Wake/park *counters* are
// transition-based in both (park once per blocking transition, wake once
// per unpark, one wake per class per freed link plus baton handoffs), so
// full SchedulerStats — including wake_tests and futile_wakeups — must
// compare equal.
//
// A second fuzz harness drives random interleavings (including
// reconfiguration, reprioritization, double-done abuse, and oversized
// probes) and asserts the occupancy-index invariants through
// check_consistency() after every operation, plus the progress guarantee:
// a scheduler with queued work is never idle.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/lane_scheduler.hpp"
#include "util/rng.hpp"

namespace netmon {
namespace {

using core::AdmissionRecord;
using core::LaneScheduler;
using core::LinkKey;
using core::ProbeClass;
using core::ProbeProfile;
using core::SchedulerConfig;
using core::SchedulerStats;

constexpr std::int64_t kMs = 1'000'000;
// Must match the scheduler's internal admission tolerance.
constexpr double kBudgetSlack = 1e-6;

// ---------------------------------------------------------------------------
// Shared op stream: generated once per (seed, shape), replayed against both
// systems. Target selection for complete/abandon is a raw draw resolved
// against each system's own in-flight set — identical picks as long as the
// systems agree, which is exactly what the test proves inductively.

struct Op {
  enum Kind { kSubmit, kComplete, kAbandon } kind = kSubmit;
  ProbeProfile profile;       // kSubmit
  std::uint64_t selector = 0; // kComplete / kAbandon
  std::int64_t dt_ns = 0;     // clock advance before the op
};

struct StreamShape {
  std::size_t ops = 50'000;
  int link_keys = 48;          // footprint keys drawn from [1, link_keys]
  int max_footprint = 3;
  double max_offered = 60.0;
  double oversized_share = 0.0;  // probes larger than the whole budget
  double oversized_bps = 0.0;
};

std::vector<Op> make_ops(std::uint64_t seed, const StreamShape& shape) {
  util::Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(shape.ops);
  for (std::size_t i = 0; i < shape.ops; ++i) {
    Op op;
    op.dt_ns = rng.uniform_int(0, 3) * kMs;
    const double roll = rng.uniform();
    if (i < 32 || roll < 0.50) {
      op.kind = Op::kSubmit;
      op.profile.priority =
          static_cast<ProbeClass>(rng.uniform_int(0, 5) % 3);  // normal-heavy
      op.profile.tag = i;
      if (shape.oversized_share > 0.0 &&
          rng.uniform() < shape.oversized_share) {
        op.profile.offered_bps = shape.oversized_bps;
      } else if (rng.uniform() < 0.85) {
        op.profile.offered_bps = rng.uniform(1.0, shape.max_offered);
      }  // else: undeclared load, budget-exempt
      const int fp = static_cast<int>(rng.uniform_int(0, shape.max_footprint));
      for (int k = 0; k < fp; ++k) {
        op.profile.footprint.push_back(
            static_cast<LinkKey>(rng.uniform_int(1, shape.link_keys)));
      }
    } else {
      op.kind = roll < 0.90 ? Op::kComplete : Op::kAbandon;
      op.selector = rng.next();
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

// ---------------------------------------------------------------------------
// System under test: the real (indexed) LaneScheduler.

struct SutResult {
  std::vector<AdmissionRecord> trace;
  SchedulerStats stats;
  std::uint64_t launched = 0;
  std::uint64_t completed = 0;
  std::uint64_t abandoned = 0;
};

SutResult run_sut(const SchedulerConfig& cfg, const std::vector<Op>& ops) {
  LaneScheduler sched(cfg);
  std::int64_t now = 0;
  sched.set_clock([&now] { return now; });
  sched.record_admissions(ops.size() + 8);

  // In-flight Dones keyed by submission index; std::map iteration order is
  // submission order, mirrored by the reference.
  std::map<std::uint64_t, LaneScheduler::Done> running;
  auto launch = [&running](std::uint64_t id) {
    return [&running, id](LaneScheduler::Done done) {
      running.emplace(id, std::move(done));
    };
  };
  auto settle = [&running, &sched](std::uint64_t selector, bool invoke) {
    if (running.empty()) return;
    auto it = running.begin();
    std::advance(it, static_cast<long>(selector % running.size()));
    auto done = std::move(it->second);
    running.erase(it);
    if (invoke) done();
    // else: `done` destructs uncalled -> abandoned lane release
    sched.check_consistency();
  };

  std::uint64_t id = 0;
  for (const Op& op : ops) {
    now += op.dt_ns;
    switch (op.kind) {
      case Op::kSubmit:
        sched.enqueue(launch(id++), op.profile);
        break;
      case Op::kComplete:
        settle(op.selector, true);
        break;
      case Op::kAbandon:
        settle(op.selector, false);
        break;
    }
  }
  while (!running.empty()) {
    now += kMs;
    auto it = running.begin();
    auto done = std::move(it->second);
    running.erase(it);
    done();
  }
  EXPECT_TRUE(sched.idle());
  sched.check_consistency();

  SutResult r;
  r.trace = sched.admissions();
  r.stats = sched.scheduler_stats();
  r.launched = sched.launched();
  r.completed = sched.completed();
  r.abandoned = sched.abandoned();
  return r;
}

// ---------------------------------------------------------------------------
// Reference model: the pre-index full-scan semantics. Every admission pass
// walks ALL waiting entries of a class in seq order and gate-tests each —
// parked or not — taking the first pass. Park/wake state is tracked purely
// to mirror the transition-counted stats; it never short-circuits a test,
// so a stale park in the SUT shows up as a trace divergence here.

class ScanScheduler {
 public:
  explicit ScanScheduler(SchedulerConfig cfg) : cfg_(cfg) {}

  void set_now(std::int64_t now) { now_ = now; }

  std::uint64_t submit(const ProbeProfile& profile) {
    const std::uint64_t seq = next_seq_++;
    Entry e;
    e.seq = seq;
    e.tag = profile.tag;
    e.cls = profile.priority;
    e.offered = profile.offered_bps;
    e.fp = profile.footprint;
    e.enqueued_ns = now_;
    waiting_.push_back(std::move(e));
    pump();
    return seq;
  }

  bool settle(std::uint64_t selector, bool invoke) {
    if (inflight_.empty()) return false;
    auto it = inflight_.begin();
    std::advance(it, static_cast<long>(selector % inflight_.size()));
    finish(it, invoke);
    return true;
  }

  bool drain_one() {
    if (inflight_.empty()) return false;
    finish(inflight_.begin(), true);
    return true;
  }

  bool idle() const { return inflight_.empty() && waiting_.empty(); }
  bool inflight_empty_but_waiting() const {
    return inflight_.empty() && !waiting_.empty();
  }
  const std::vector<AdmissionRecord>& trace() const { return trace_; }
  const SchedulerStats& stats() const { return stats_; }
  std::uint64_t launched() const { return launched_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t abandoned() const { return abandoned_; }

 private:
  enum class ParkState { kReady, kLink, kBudget };
  struct Entry {
    std::uint64_t seq = 0;
    std::uint64_t tag = 0;
    ProbeClass cls = ProbeClass::kNormal;
    double offered = 0.0;
    std::vector<LinkKey> fp;
    std::int64_t enqueued_ns = 0;
    ParkState park = ParkState::kReady;
    LinkKey park_key = 0;
    LinkKey woken_from = 0;  // freed link whose wake this entry carries
    bool woken = false;
  };
  struct InFlight {
    std::uint64_t launch_id = 0;  // submission order, mirrors the SUT map
    double offered = 0.0;
    std::vector<LinkKey> fp;
    std::uint32_t lane = 0;
  };

  double ceiling() const { return cfg_.budget_bps * (1.0 + kBudgetSlack); }

  // Gate test identical to the SUT's: budget (committed only; no live
  // probe in the model streams), then first busy link in route order.
  enum class Gate { kPass, kBudget, kLink };
  Gate gates(const Entry& e, LinkKey* blocked) const {
    if (cfg_.budget_bps > 0.0 && e.offered > 0.0 &&
        committed_ + e.offered > ceiling()) {
      return Gate::kBudget;
    }
    if (cfg_.link_disjoint) {
      for (LinkKey key : e.fp) {
        auto it = busy_.find(key);
        if (it != busy_.end() && it->second > 0) {
          *blocked = key;
          return Gate::kLink;
        }
      }
    }
    return Gate::kPass;
  }

  Entry* pick() {
    const bool idle_sched = inflight_.empty();
    Entry* best = nullptr;
    std::int64_t best_score = 0;
    bool best_starving = false;
    for (std::size_t cls = 0; cls < core::kProbeClassCount; ++cls) {
      Entry* cand = nullptr;
      for (Entry& e : waiting_) {  // seq order: the full scan
        if (static_cast<std::size_t>(e.cls) != cls) continue;
        if (idle_sched) {  // progress guarantee: no gates, no counters
          cand = &e;
          break;
        }
        LinkKey blocked = 0;
        const Gate g = gates(e, &blocked);
        if (g == Gate::kPass) {
          cand = &e;
          break;
        }
        if (e.park == ParkState::kReady) {  // blocking transition: count
          if (e.woken) {
            ++stats_.futile_wakeups;
            e.woken = false;
          }
          const LinkKey baton = e.woken_from;
          e.woken_from = 0;
          if (g == Gate::kBudget) {
            ++stats_.deferred_budget;
            e.park = ParkState::kBudget;
          } else {
            ++stats_.deferred_disjoint;
            e.park = ParkState::kLink;
            e.park_key = blocked;
          }
          // Baton handoff, mirrored: a carried wake whose entry re-parked
          // passes to the freed link's next waiter of the same class.
          if (baton != 0) wake_next_on(baton, cls);
        }
      }
      if (cand == nullptr) continue;
      const std::int64_t wait =
          now_ > cand->enqueued_ns ? now_ - cand->enqueued_ns : 0;
      std::int64_t score = static_cast<std::int64_t>(cls) * 8;
      if (cfg_.aging_quantum_ns > 0) score += wait / cfg_.aging_quantum_ns;
      const bool starving = cfg_.starvation_limit_ns > 0 &&
                            wait >= cfg_.starvation_limit_ns;
      const bool wins =
          best == nullptr ||
          (starving != best_starving
               ? starving
               : (starving ? (cand->enqueued_ns != best->enqueued_ns
                                  ? cand->enqueued_ns < best->enqueued_ns
                                  : cand->seq < best->seq)
                           : (score != best_score ? score > best_score
                                                  : cand->seq < best->seq)));
      if (wins) {
        best = cand;
        best_score = score;
        best_starving = starving;
      }
    }
    if (best != nullptr && best_starving) ++stats_.starvation_picks;
    return best;
  }

  void admit(Entry* e) {
    InFlight f;
    f.launch_id = launch_ids_++;
    f.offered = e->offered;
    f.fp = e->fp;
    if (!free_lanes_.empty()) {
      f.lane = *free_lanes_.begin();
      free_lanes_.erase(free_lanes_.begin());
    } else {
      f.lane = lane_high_++;
    }
    const Entry admitted = *e;
    for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
      if (it->seq == admitted.seq) {
        waiting_.erase(it);
        break;
      }
    }
    for (const Entry& other : waiting_) {
      if (other.seq < admitted.seq) {
        ++stats_.priority_inversions;
        break;
      }
    }
    ++launched_;
    ++stats_.admitted;
    committed_ += admitted.offered;
    for (LinkKey key : admitted.fp) ++busy_[key];
    inflight_.emplace(admitted.seq, std::move(f));
    trace_.push_back(AdmissionRecord{
        static_cast<std::uint64_t>(trace_.size()), now_, admitted.seq,
        admitted.tag, admitted.cls, admitted.offered,
        static_cast<std::uint32_t>(inflight_.size()),
        inflight_.at(admitted.seq).lane});
  }

  void finish(std::map<std::uint64_t, InFlight>::iterator it, bool invoked) {
    const InFlight f = std::move(it->second);
    inflight_.erase(it);
    if (invoked) {
      ++completed_;
    } else {
      ++abandoned_;
    }
    committed_ -= f.offered;
    if (inflight_.empty() || committed_ < 0.0) committed_ = 0.0;
    free_lanes_.insert(f.lane);
    // Incremental wake, mirrored: a freed link wakes only its lowest-seq
    // waiter per class; the rest wait for the baton.
    for (LinkKey key : f.fp) {
      auto b = busy_.find(key);
      if (b == busy_.end()) continue;
      if (--b->second == 0) {
        busy_.erase(b);
        for (std::size_t cls = 0; cls < core::kProbeClassCount; ++cls) {
          wake_next_on(key, cls);
        }
      }
    }
    // Budget watermark: everything whose offered load now fits.
    if (cfg_.budget_bps > 0.0 && f.offered > 0.0) {
      const double headroom = ceiling() - committed_;
      for (Entry& e : waiting_) {
        if (e.park == ParkState::kBudget && e.offered <= headroom) {
          wake(e, 0);
        }
      }
    }
    pump();
  }

  void wake(Entry& e, LinkKey from) {
    e.park = ParkState::kReady;
    e.park_key = 0;
    e.woken_from = from;
    e.woken = true;
    ++stats_.wake_tests;
  }

  // Wake the lowest-seq entry of `cls` parked on `key`, if the key is
  // (still) free. waiting_ is in seq order, so the first match is the
  // minimum — the only waiter of its class that can become the candidate.
  void wake_next_on(LinkKey key, std::size_t cls) {
    auto b = busy_.find(key);
    if (b != busy_.end() && b->second > 0) return;
    for (Entry& e : waiting_) {
      if (e.park == ParkState::kLink && e.park_key == key &&
          static_cast<std::size_t>(e.cls) == cls) {
        wake(e, key);
        return;
      }
    }
  }

  void pump() {
    while (inflight_.size() < cfg_.lanes && !waiting_.empty()) {
      Entry* e = pick();
      if (e == nullptr) break;
      admit(e);
    }
  }

  // Keyed by submission seq; iteration order == submission order, matching
  // the SUT driver's running map, so the same selector picks the same task.
  SchedulerConfig cfg_;
  std::int64_t now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t launch_ids_ = 0;
  std::vector<Entry> waiting_;  // seq order (append-only at the back)
  std::map<std::uint64_t, InFlight> inflight_;
  std::unordered_map<LinkKey, int> busy_;
  std::set<std::uint32_t> free_lanes_;
  std::uint32_t lane_high_ = 0;
  double committed_ = 0.0;
  std::uint64_t launched_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t abandoned_ = 0;
  SchedulerStats stats_;
  std::vector<AdmissionRecord> trace_;
};

SutResult run_reference(const SchedulerConfig& cfg,
                        const std::vector<Op>& ops) {
  ScanScheduler sched(cfg);
  std::int64_t now = 0;
  for (const Op& op : ops) {
    now += op.dt_ns;
    sched.set_now(now);
    switch (op.kind) {
      case Op::kSubmit:
        sched.submit(op.profile);
        break;
      case Op::kComplete:
        sched.settle(op.selector, true);
        break;
      case Op::kAbandon:
        sched.settle(op.selector, false);
        break;
    }
  }
  while (!sched.idle()) {
    now += kMs;
    sched.set_now(now);
    EXPECT_TRUE(sched.drain_one()) << "reference stuck with queued work";
    if (sched.inflight_empty_but_waiting()) break;
  }

  SutResult r;
  r.trace = sched.trace();
  r.stats = sched.stats();
  r.launched = sched.launched();
  r.completed = sched.completed();
  r.abandoned = sched.abandoned();
  return r;
}

void expect_equivalent(const SchedulerConfig& cfg, std::uint64_t seed,
                       const StreamShape& shape) {
  const std::vector<Op> ops = make_ops(seed, shape);
  const SutResult sut = run_sut(cfg, ops);
  const SutResult ref = run_reference(cfg, ops);

  ASSERT_EQ(sut.trace.size(), ref.trace.size());
  for (std::size_t i = 0; i < sut.trace.size(); ++i) {
    const AdmissionRecord& a = sut.trace[i];
    const AdmissionRecord& b = ref.trace[i];
    ASSERT_EQ(a.admit_seq, b.admit_seq) << "at admission " << i;
    ASSERT_EQ(a.at_ns, b.at_ns) << "at admission " << i;
    ASSERT_EQ(a.entry_seq, b.entry_seq) << "at admission " << i;
    ASSERT_EQ(a.tag, b.tag) << "at admission " << i;
    ASSERT_EQ(a.priority, b.priority) << "at admission " << i;
    ASSERT_EQ(a.offered_bps, b.offered_bps) << "at admission " << i;
    ASSERT_EQ(a.in_flight_after, b.in_flight_after) << "at admission " << i;
    ASSERT_EQ(a.lane, b.lane) << "at admission " << i;
  }
  EXPECT_EQ(sut.launched, ref.launched);
  EXPECT_EQ(sut.completed, ref.completed);
  EXPECT_EQ(sut.abandoned, ref.abandoned);
  EXPECT_TRUE(sut.stats == ref.stats)
      << "admitted " << sut.stats.admitted << "/" << ref.stats.admitted
      << " deferred_budget " << sut.stats.deferred_budget << "/"
      << ref.stats.deferred_budget << " deferred_disjoint "
      << sut.stats.deferred_disjoint << "/" << ref.stats.deferred_disjoint
      << " starvation " << sut.stats.starvation_picks << "/"
      << ref.stats.starvation_picks << " inversions "
      << sut.stats.priority_inversions << "/"
      << ref.stats.priority_inversions << " wake_tests "
      << sut.stats.wake_tests << "/" << ref.stats.wake_tests
      << " futile " << sut.stats.futile_wakeups << "/"
      << ref.stats.futile_wakeups;
  // The streams genuinely exercised the machinery under test.
  EXPECT_GT(sut.stats.deferred_disjoint, 0u);
  EXPECT_GT(sut.stats.wake_tests, 0u);
}

TEST(SchedulerModel, IndexedGateMatchesFullScanUnderBudgetAndStarvation) {
  SchedulerConfig cfg;
  cfg.lanes = 4;
  cfg.budget_bps = 120.0;
  cfg.link_disjoint = true;
  cfg.aging_quantum_ns = 50 * kMs;
  cfg.starvation_limit_ns = 300 * kMs;

  StreamShape shape;
  shape.ops = 50'000;
  shape.link_keys = 48;
  shape.max_footprint = 3;
  shape.max_offered = 60.0;

  expect_equivalent(cfg, 0xA11CEull, shape);
}

TEST(SchedulerModel, IndexedGateMatchesFullScanUnderHeavyLinkContention) {
  SchedulerConfig cfg;
  cfg.lanes = 8;
  cfg.budget_bps = 500.0;
  cfg.link_disjoint = true;
  cfg.aging_quantum_ns = 20 * kMs;
  cfg.starvation_limit_ns = 0;  // pure aging, no hard bound

  StreamShape shape;
  shape.ops = 50'000;
  shape.link_keys = 12;  // 8 lanes over 12 keys: most entries park
  shape.max_footprint = 3;
  shape.max_offered = 200.0;
  // Probes wider than the whole budget are admissible only through the
  // idle-scheduler progress guarantee — the watermark must never wake them
  // and the idle path must still drain them.
  shape.oversized_share = 0.01;
  shape.oversized_bps = 600.0;

  expect_equivalent(cfg, 0xB0Bull, shape);
}

// ---------------------------------------------------------------------------
// Property/fuzz harness: random interleavings against the self-checking
// invariants. check_consistency() proves after every operation that the
// occupancy index equals the multiset union of in-flight footprints, that
// waiter lists carry no stale entries, that every budget-parked entry
// genuinely exceeds the watermark, and that no ready entry lost its heap
// reference; the harness adds the progress guarantee (queued work implies
// a non-idle scheduler) and exact lane accounting on top.

TEST(SchedulerFuzz, OccupancyIndexInvariantsHoldUnderRandomInterleavings) {
  util::Rng rng(0xF0CC5ull);
  for (int round = 0; round < 12; ++round) {
    SchedulerConfig cfg;
    cfg.lanes = static_cast<std::size_t>(rng.uniform_int(1, 6));
    cfg.budget_bps = rng.bernoulli(0.7) ? rng.uniform(50.0, 300.0) : 0.0;
    cfg.link_disjoint = rng.bernoulli(0.85);
    cfg.aging_quantum_ns = rng.bernoulli(0.5) ? 20 * kMs : 0;
    cfg.starvation_limit_ns = rng.bernoulli(0.5) ? 200 * kMs : 0;
    const int keys = static_cast<int>(rng.uniform_int(4, 32));

    LaneScheduler sched(cfg);
    std::int64_t now = 0;
    sched.set_clock([&now] { return now; });

    std::map<std::uint64_t, LaneScheduler::Done> running;
    std::uint64_t id = 0;
    std::uint64_t submitted = 0;
    for (int op = 0; op < 2500; ++op) {
      now += rng.uniform_int(0, 2) * kMs;
      const double roll = rng.uniform();
      if (roll < 0.48) {
        ProbeProfile p;
        p.priority = static_cast<ProbeClass>(rng.uniform_int(0, 2));
        p.tag = id % 7;  // small tag space so reprioritize hits batches
        if (rng.bernoulli(0.8)) p.offered_bps = rng.uniform(1.0, 120.0);
        if (rng.bernoulli(0.02)) p.offered_bps = 500.0;  // oversized
        const int fp = static_cast<int>(rng.uniform_int(0, 4));
        for (int k = 0; k < fp; ++k) {
          p.footprint.push_back(
              static_cast<LinkKey>(rng.uniform_int(1, keys)));
        }
        const std::uint64_t this_id = id++;
        ++submitted;
        sched.enqueue(
            [&running, this_id](LaneScheduler::Done done) {
              running.emplace(this_id, std::move(done));
            },
            p);
      } else if (roll < 0.78) {
        if (!running.empty()) {
          auto it = running.begin();
          std::advance(it, static_cast<long>(
                               rng.next() % running.size()));
          auto done = std::move(it->second);
          running.erase(it);
          done();
          if (rng.bernoulli(0.1)) done();  // double-done: counted no-op
        }
      } else if (roll < 0.86) {
        if (!running.empty()) {
          auto it = running.begin();
          std::advance(it, static_cast<long>(
                               rng.next() % running.size()));
          running.erase(it);  // abandon: Done destroyed uncalled
        }
      } else if (roll < 0.93) {
        sched.reprioritize(rng.next() % 7,
                           static_cast<ProbeClass>(rng.uniform_int(0, 2)));
      } else {
        SchedulerConfig next = cfg;
        next.lanes = static_cast<std::size_t>(rng.uniform_int(1, 6));
        next.budget_bps =
            rng.bernoulli(0.7) ? rng.uniform(50.0, 300.0) : 0.0;
        sched.configure(next);
        cfg = next;
      }
      sched.check_consistency();
      // Progress guarantee: queued work and an idle scheduler never coexist
      // after an operation settles — the idle pick admits unconditionally.
      EXPECT_FALSE(sched.in_flight() == 0 && sched.queued() > 0)
          << "idle scheduler left work queued (round " << round << " op "
          << op << ")";
      EXPECT_EQ(sched.in_flight(), running.size());
      EXPECT_EQ(sched.launched() + sched.queued(), submitted);
    }
    // Drain; everything must account as completed or abandoned.
    while (!running.empty()) {
      now += kMs;
      auto it = running.begin();
      auto done = std::move(it->second);
      running.erase(it);
      done();
      sched.check_consistency();
    }
    EXPECT_TRUE(sched.idle()) << "round " << round;
    EXPECT_EQ(sched.completed() + sched.abandoned(), submitted);
    EXPECT_EQ(sched.busy_links(), 0u);
    EXPECT_EQ(sched.parked_on_links(), 0u);
    EXPECT_EQ(sched.parked_on_budget(), 0u);
    EXPECT_EQ(sched.committed_bps(), 0.0);
  }
}

}  // namespace
}  // namespace netmon
