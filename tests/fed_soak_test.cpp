// Two-level federation soak (DESIGN.md §14): two zone monitors, each owning
// a 500-path sub-matrix of the leaf/spine fabric, stream sealed pages and
// current-value deltas to one parent manager across the fabric itself while
// a scripted fault plan partitions one child (long enough to overflow its
// spool) and crash/restarts the other. At quiesce the parent's ledger must
// balance exactly: every point either merged once or reported lost, zero
// duplicates, zone staleness visible during each outage, and parent-side
// senescence bounded by the delta cadence while zones are healthy. A
// smaller same-seed scenario run twice must produce bit-identical
// replication logs on both ends. Emits fed-replication-stats.json for CI.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/fabric.hpp"
#include "core/measurement_db.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fed/child.hpp"
#include "fed/parent.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace netmon::fed {
namespace {

using core::Metric;
using core::MetricValue;
using core::Path;
using sim::Duration;
using sim::TimePoint;

core::TieredStorageConfig zone_tiers() {
  core::TieredStorageConfig cfg;
  cfg.page_points = 8;  // short pages: replication exercised from the start
  cfg.rollup_factor = 4;
  cfg.tiers = 2;
  return cfg;
}

core::TieredStorageConfig parent_tiers() {
  core::TieredStorageConfig cfg;
  cfg.page_points = 64;
  cfg.rollup_factor = 8;
  cfg.tiers = 2;
  cfg.max_pages = 16384;  // hold both zones' merged points without eviction
  return cfg;
}

TEST(FedSoak, TwoZoneFabricSurvivesPartitionAndCrash) {
  sim::Simulator sim;
  apps::FabricOptions fab;
  fab.spines = 2;
  fab.client_edges = 2;
  fab.clients_per_edge = 13;  // 26 clients; the zones use the first 25
  fab.server_edges = 5;
  fab.servers_per_edge = 8;  // 40 servers, split 20/20 across the zones
  fab.seed = 404;
  fab.install_sinks = false;  // no probing in this soak, only replication
  apps::FabricTestbed fabric(sim, fab);

  // Zone sub-matrices: 20 servers x 25 clients = 500 paths each.
  std::vector<Path> paths_a;
  std::vector<Path> paths_b;
  for (int s = 0; s < 20; ++s) {
    for (int c = 0; c < 25; ++c) {
      paths_a.push_back(fabric.path(s, c));
      paths_b.push_back(fabric.path(20 + s, c));
    }
  }

  core::MeasurementDatabase parent_db(4, parent_tiers());
  core::MeasurementDatabase db_a(4, zone_tiers());
  core::MeasurementDatabase db_b(4, zone_tiers());

  FedParent parent(fabric.station(), parent_db, {});
  auto child_config = [&](const std::string& zone) {
    FedChildConfig cfg;
    cfg.zone = zone;
    cfg.parent_ip = fabric.station().primary_ip();
    cfg.spool_max_pages = 800;  // the partition burst must overflow this
    cfg.retry_max = Duration::sec(5);
    cfg.ack_timeout = Duration::sec(2);
    cfg.delta_min_gap = Duration::sec(5);
    return cfg;
  };
  FedChild child_a(fabric.server(0), db_a, child_config("zone-a"));
  FedChild child_b(fabric.server(20), db_b, child_config("zone-b"));

  obs::Registry registry;
  parent.attach_observability(registry, "fed.parent");
  child_a.attach_observability(registry, "fed.child.a");
  child_b.attach_observability(registry, "fed.child.b");

  parent.start();
  child_a.start();
  child_b.start();

  // Synthetic sampling: every 500ms each live zone records one value per
  // path, 240 ticks total (pages seal every 8 ticks per series).
  int tick = 0;
  bool zone_a_alive = true;
  std::uint64_t ticks_a = 0;
  auto record_zone = [&](core::MeasurementDatabase& db,
                         const std::vector<Path>& paths, int salt) {
    for (std::size_t p = 0; p < paths.size(); ++p) {
      const double v = static_cast<double>((p * 7 + tick * 13 + salt) % 997);
      db.record(paths[p], Metric::kThroughput, MetricValue::of(v, sim.now()));
    }
  };
  sim::EventHandle driver = sim.schedule_periodic(Duration::ms(500), [&] {
    ++tick;
    if (zone_a_alive) {
      ++ticks_a;
      record_zone(db_a, paths_a, 0);
    }
    record_zone(db_b, paths_b, 1);
  });
  sim.schedule_at(TimePoint::from_nanos(Duration::sec(120).nanos() + 250000),
                  [&] { driver.cancel(); });

  // Scripted outages: child-b unreachable-not-dead for 10s (spool overflow),
  // child-a crash/restarted (watermark resume) — both via the fault plan.
  fault::FaultInjector injector(sim);
  injector.register_host("child-a", fabric.server(0));
  injector.register_host("child-b", fabric.server(20));
  fault::FaultPlan plan;
  plan.partition(Duration::sec(30), "child-b", Duration::sec(10));
  plan.host_crash(Duration::sec(50), "child-a");
  plan.host_restart(Duration::sec(60), "child-a");
  injector.arm(plan);
  // The replication agent rides its host: crash loses volatile session
  // state (and a dead zone records nothing), restart renegotiates.
  sim.schedule_at(TimePoint::from_nanos(Duration::sec(50).nanos() + 1000000),
                  [&] {
                    child_a.crash();
                    zone_a_alive = false;
                  });
  sim.schedule_at(TimePoint::from_nanos(Duration::sec(60).nanos() + 1000000),
                  [&] {
                    child_a.restart();
                    zone_a_alive = true;
                  });

  // Mid-run probes, at protocol-relevant moments.
  bool b_stale_mid = false;
  bool a_stale_mid = true;
  sim.schedule_at(TimePoint::from_nanos(Duration::sec(35).nanos()), [&] {
    b_stale_mid = parent.zone_stale("zone-b", sim.now());
    a_stale_mid = parent.zone_stale("zone-a", sim.now());
  });
  bool a_stale_in_crash = false;
  sim.schedule_at(TimePoint::from_nanos(Duration::sec(57).nanos()), [&] {
    a_stale_in_crash = parent.zone_stale("zone-a", sim.now());
  });
  std::vector<std::int64_t> healthy_senescence_ns;
  sim.schedule_at(TimePoint::from_nanos(Duration::sec(115).nanos()), [&] {
    for (std::size_t k : {std::size_t{0}, std::size_t{123}, std::size_t{499}}) {
      const core::PathId pid = parent_db.find(paths_a[k]);
      if (pid == core::kInvalidPathId) continue;
      const auto s =
          parent.zone_senescence("zone-a", pid, Metric::kThroughput, sim.now());
      if (s) healthy_senescence_ns.push_back(s->nanos());
    }
  });

  sim.run_until(TimePoint::from_nanos(Duration::sec(220).nanos()));

  // --- liveness view ---------------------------------------------------------
  EXPECT_TRUE(b_stale_mid);       // partitioned zone read as stale
  EXPECT_FALSE(a_stale_mid);      // the healthy zone did not
  EXPECT_TRUE(a_stale_in_crash);  // crashed zone read as stale
  EXPECT_FALSE(parent.zone_stale("zone-a", sim.now()));
  EXPECT_FALSE(parent.zone_stale("zone-b", sim.now()));

  // While a zone is healthy, parent-side senescence is bounded by the delta
  // cadence (5s min gap) plus heartbeat/transit slack — C·S·T end to end.
  ASSERT_FALSE(healthy_senescence_ns.empty());
  for (const std::int64_t ns : healthy_senescence_ns) {
    EXPECT_LE(ns, Duration::sec(7).nanos());
  }

  // --- conservation ----------------------------------------------------------
  const auto& pa = parent.stats();
  const auto& ca = child_a.stats();
  const auto& cb = child_b.stats();

  // Both spools fully drained and every sealed point accounted exactly once:
  // merged or honestly lost, never both, never dropped silently.
  EXPECT_EQ(child_a.spool_pages(), 0u);
  EXPECT_EQ(child_b.spool_pages(), 0u);
  EXPECT_EQ(pa.points_merged + pa.points_lost,
            ca.points_spooled + cb.points_spooled);
  EXPECT_EQ(pa.implicit_gap_pages, 0u);

  // The crash/restart zone lost nothing (durable spool + watermark resume);
  // the partitioned zone shed under pressure and reported all of it.
  EXPECT_EQ(ca.pages_shed, 0u);
  EXPECT_EQ(parent.zone_points_lost("zone-a"), 0u);
  EXPECT_GT(cb.pages_shed, 0u);
  EXPECT_EQ(parent.zone_points_lost("zone-b"), cb.points_shed);
  EXPECT_EQ(pa.points_lost, cb.points_shed);

  // Zone-a arithmetic is exact: 500 series, every fully sealed page merged.
  const std::uint64_t sealed_per_series_a = ticks_a - (ticks_a % 8);
  EXPECT_EQ(ca.points_spooled, 500 * sealed_per_series_a);
  for (std::size_t k : {std::size_t{0}, std::size_t{250}, std::size_t{499}}) {
    const auto result =
        parent_db.query(paths_a[k], Metric::kThroughput,
                        TimePoint::from_nanos(0), sim.now(), Duration::ns(0));
    std::uint64_t merged = 0;
    for (const auto& p : result.points) merged += p.count;
    EXPECT_EQ(merged, sealed_per_series_a) << "path " << k;
  }

  // Sessions: one initial each, plus a resume per outage.
  EXPECT_EQ(child_a.incarnation(), 2u);
  EXPECT_EQ(ca.crashes, 1u);
  EXPECT_EQ(ca.restarts, 1u);
  EXPECT_GE(pa.resumes, 2u);
  EXPECT_EQ(pa.protocol_errors, 0u);
  EXPECT_GT(pa.heartbeats, 0u);
  // Deltas are best-effort freshness: ones in flight when a session dies
  // (e.g. zone-b's round at partition onset) are lost, never re-sent.
  EXPECT_GT(pa.deltas_applied, 0u);
  EXPECT_LE(pa.deltas_applied, ca.deltas_sent + cb.deltas_sent);

  // CI artifact: headline ledger plus the full registry snapshot.
  std::ofstream out("fed-replication-stats.json");
  out << "{\n\"zone_a\": {\"points_spooled\": " << ca.points_spooled
      << ", \"pages_shed\": " << ca.pages_shed
      << ", \"pages_resent\": " << ca.pages_resent
      << ", \"crashes\": " << ca.crashes << ", \"sessions\": " << ca.sessions
      << "},\n\"zone_b\": {\"points_spooled\": " << cb.points_spooled
      << ", \"pages_shed\": " << cb.pages_shed
      << ", \"points_shed\": " << cb.points_shed
      << ", \"sessions\": " << cb.sessions
      << "},\n\"parent\": {\"points_merged\": " << pa.points_merged
      << ", \"points_lost\": " << pa.points_lost
      << ", \"duplicates_skipped\": " << pa.duplicates_skipped
      << ", \"implicit_gap_pages\": " << pa.implicit_gap_pages
      << ", \"resumes\": " << pa.resumes << "},\n\"registry\": "
      << (obs::kCompiledIn ? registry.export_json() : std::string("{}"))
      << "\n}\n";
  ASSERT_TRUE(out.good());
}

// A reduced same-seed scenario with traffic, a partition window, and a
// crash/restart; both replication logs must be bit-identical across runs.
std::pair<std::string, std::string> run_replay_scenario(std::uint64_t seed) {
  sim::Simulator sim;
  net::Network network(sim, util::Rng(seed));
  net::Host& parent_host = network.add_host("parent");
  net::Host& child_host = network.add_host("child");
  network.connect(parent_host, net::IpAddr(10, 0, 0, 1), child_host,
                  net::IpAddr(10, 0, 0, 2), 24, 10e6, Duration::ms(1));
  network.auto_route();
  core::MeasurementDatabase parent_db(4, parent_tiers());
  core::MeasurementDatabase child_db(4, zone_tiers());
  FedParent parent(parent_host, parent_db, {});
  FedChildConfig cfg;
  cfg.zone = "soak-det";
  cfg.parent_ip = net::IpAddr(10, 0, 0, 1);
  cfg.spool_max_pages = 24;  // small enough to shed during the partition
  cfg.retry_max = Duration::sec(5);
  cfg.ack_timeout = Duration::sec(2);
  FedChild child(child_host, child_db, cfg);
  parent.start();
  child.start();

  std::vector<Path> paths;
  for (int p = 0; p < 50; ++p) {
    paths.push_back(Path(
        core::ProcessEndpoint{"s", net::IpAddr(10, 1, 0, 1), 1},
        core::ProcessEndpoint{"c", net::IpAddr(10, 1, 1, 1 + p), 1}));
  }
  int tick = 0;
  sim::EventHandle driver = sim.schedule_periodic(Duration::ms(200), [&] {
    ++tick;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      child_db.record(paths[p], Metric::kThroughput,
                      MetricValue::of(static_cast<double>((p + tick) % 53),
                                      sim.now()));
    }
  });
  sim.schedule_at(TimePoint::from_nanos(Duration::sec(10).nanos()), [&] {
    for (const auto& nic : parent_host.nics()) nic->set_up(false);
  });
  sim.schedule_at(TimePoint::from_nanos(Duration::sec(18).nanos()), [&] {
    for (const auto& nic : parent_host.nics()) nic->set_up(true);
  });
  sim.schedule_at(TimePoint::from_nanos(Duration::sec(22).nanos()),
                  [&] { child.crash(); });
  sim.schedule_at(TimePoint::from_nanos(Duration::sec(24).nanos()),
                  [&] { child.restart(); });
  sim.schedule_at(TimePoint::from_nanos(Duration::sec(30).nanos()),
                  [&] { driver.cancel(); });
  sim.run_until(TimePoint::from_nanos(Duration::sec(60).nanos()));
  return {child.log().export_text(), parent.log().export_text()};
}

TEST(FedSoak, SameSeedRunsReplayBitIdenticalLogs) {
  const auto first = run_replay_scenario(99);
  const auto second = run_replay_scenario(99);
  EXPECT_FALSE(first.first.empty());
  EXPECT_FALSE(first.second.empty());
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

}  // namespace
}  // namespace netmon::fed
