// Model-based randomized test for the event core (sim/timer_wheel.hpp +
// sim/event_heap.hpp behind sim::Simulator): 100k random schedule / cancel /
// advance operations — with callbacks that themselves schedule and cancel —
// run against a naive reference model that keeps a flat vector of events and
// fires the minimum (time, seq) each step. The two must agree on the exact
// firing log (id, time), which pins down the wheel/heap split, batch
// dispatch order, (time, seq) tie-breaking, one-shot cancel staleness, and
// the deferred release of a periodic cancelled from inside its own callback.
//
// Sequence-number accounting is part of the contract: every schedule call
// consumes one seq in call order, and a periodic timer's re-arm consumes a
// fresh seq AFTER its callback ran (so events the callback schedules order
// ahead of the re-armed firing at equal timestamps). The reference model
// mirrors exactly that.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace netmon {
namespace {

using sim::Duration;
using sim::TimePoint;

constexpr std::int64_t kMs = 1'000'000;

// Deterministic per-(event, firing) hash driving in-callback behavior, so
// the simulator run and the model run decide identically without sharing a
// mutable random stream.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = (a + 0x9E3779B97F4A7C15ull) * 0xBF58476D1CE4E5B9ull;
  x ^= b * 0x94D049BB133111EBull;
  x ^= x >> 27;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 31;
  return x;
}

// What one firing of event `id` does, decided purely from (id, count).
struct FireActions {
  bool spawn = false;
  std::int64_t spawn_delay_ns = 0;
  bool cancel = false;
  std::uint64_t cancel_target = 0;
  bool cancel_self = false;  // periodic timers retire themselves eventually
};

FireActions actions_for(std::uint64_t id, int count, bool periodic) {
  FireActions a;
  const std::uint64_t h = mix(id, static_cast<std::uint64_t>(count));
  if (h % 100 < 20) {
    a.spawn = true;
    // Includes 0-delay spawns: due at the current instant, which exercises
    // the wheel-rejects/heap-fallback path and same-timestamp seq ordering.
    a.spawn_delay_ns = static_cast<std::int64_t>((h >> 8) % 4) * kMs;
  }
  if (h % 100 >= 90 && id > 8) {
    a.cancel = true;
    a.cancel_target = id - 1 - (h >> 16) % 8;  // possibly long dead: no-op
  }
  if (periodic && count >= static_cast<int>(h % 5)) a.cancel_self = true;
  return a;
}

using FiringLog = std::vector<std::pair<std::uint64_t, std::int64_t>>;

// ---- System under test: the real simulator --------------------------------

struct SimRun {
  sim::Simulator sim;
  std::unordered_map<std::uint64_t, sim::EventHandle> handles;
  std::unordered_map<std::uint64_t, int> fire_counts;
  FiringLog log;
  std::uint64_t next_id = 0;

  void schedule_one_shot(std::int64_t delay_ns) {
    const std::uint64_t id = next_id++;
    handles[id] =
        sim.schedule_in(Duration::ns(delay_ns), [this, id] { fire(id, false); });
  }
  void schedule_periodic(std::int64_t period_ns) {
    const std::uint64_t id = next_id++;
    handles[id] = sim.schedule_periodic(Duration::ns(period_ns),
                                        [this, id] { fire(id, true); });
  }
  void cancel(std::uint64_t id) {
    auto it = handles.find(id);
    if (it != handles.end()) it->second.cancel();  // stale handles: no-op
  }
  void fire(std::uint64_t id, bool periodic) {
    log.emplace_back(id, sim.now().nanos());
    const int count = fire_counts[id]++;
    const FireActions a = actions_for(id, count, periodic);
    if (a.spawn) schedule_one_shot(a.spawn_delay_ns);
    if (a.cancel) cancel(a.cancel_target);
    if (a.cancel_self) cancel(id);
  }
  void advance_to(std::int64_t deadline_ns) {
    sim.run_until(TimePoint::from_nanos(deadline_ns));
  }
};

// ---- Naive reference model ------------------------------------------------

struct ModelEvent {
  std::uint64_t id = 0;
  std::int64_t at = 0;
  std::uint64_t seq = 0;
  std::int64_t period = 0;  // 0: one-shot
  bool alive = true;
};

struct ModelRun {
  std::int64_t now = 0;
  std::uint64_t next_seq = 0;  // mirrors Simulator::next_seq_ exactly
  std::uint64_t next_id = 0;
  std::vector<ModelEvent> events;
  std::unordered_map<std::uint64_t, int> fire_counts;
  FiringLog log;

  void schedule_one_shot(std::int64_t delay_ns) {
    events.push_back(ModelEvent{next_id++, now + delay_ns, next_seq++, 0, true});
  }
  void schedule_periodic(std::int64_t period_ns) {
    events.push_back(
        ModelEvent{next_id++, now + period_ns, next_seq++, period_ns, true});
  }
  void cancel(std::uint64_t id) {
    for (ModelEvent& e : events) {
      if (e.id == id) e.alive = false;
    }
  }
  void advance_to(std::int64_t deadline_ns) {
    for (;;) {
      // Linear scan for the earliest (time, seq) live event due by the
      // deadline — the whole specification of the event core's ordering.
      std::size_t best = events.size();
      for (std::size_t i = 0; i < events.size(); ++i) {
        const ModelEvent& e = events[i];
        if (!e.alive || e.at > deadline_ns) continue;
        if (best == events.size() || e.at < events[best].at ||
            (e.at == events[best].at && e.seq < events[best].seq)) {
          best = i;
        }
      }
      if (best == events.size()) break;
      const std::uint64_t id = events[best].id;
      const bool periodic = events[best].period != 0;
      now = events[best].at;
      log.emplace_back(id, now);
      const int count = fire_counts[id]++;
      const FireActions a = actions_for(id, count, periodic);
      // Same action order as SimRun::fire. push_back may reallocate, so the
      // fired event is re-indexed afterwards, never held by reference.
      if (a.spawn) schedule_one_shot(a.spawn_delay_ns);
      if (a.cancel) cancel(a.cancel_target);
      if (a.cancel_self) events[best].alive = false;
      ModelEvent& fired = events[best];
      if (fired.period == 0) {
        fired.alive = false;
      } else if (fired.alive) {
        fired.at += fired.period;
        fired.seq = next_seq++;  // re-arm seq consumed after the callback
      }
    }
    now = std::max(now, deadline_ns);
    // Compact retired events so the O(n) scans stay honest-but-affordable.
    events.erase(std::remove_if(events.begin(), events.end(),
                                [](const ModelEvent& e) { return !e.alive; }),
                 events.end());
  }
};

// ---- The driver: identical op streams into both ---------------------------

TEST(TimerModel, RandomOpsMatchNaiveReference) {
  constexpr int kOpsPerSeed = 50'000;
  for (const std::uint64_t seed : {1ull, 2ull}) {
    SCOPED_TRACE(seed);
    util::Rng rng(seed);
    SimRun real;
    ModelRun model;
    for (int op = 0; op < kOpsPerSeed; ++op) {
      const std::int64_t roll = rng.uniform_int(0, 99);
      if (roll < 70) {
        // Quantized to whole milliseconds so timestamps collide constantly
        // and the (time, seq) tie-break actually decides the order.
        const std::int64_t delay = rng.uniform_int(0, 7) * kMs;
        real.schedule_one_shot(delay);
        model.schedule_one_shot(delay);
      } else if (roll < 75) {
        const std::int64_t period = rng.uniform_int(1, 4) * kMs;
        real.schedule_periodic(period);
        model.schedule_periodic(period);
      } else if (roll < 90) {
        if (real.next_id > 0) {
          const std::uint64_t lo =
              real.next_id > 64 ? real.next_id - 64 : 0;
          const std::uint64_t target = static_cast<std::uint64_t>(
              rng.uniform_int(static_cast<std::int64_t>(lo),
                              static_cast<std::int64_t>(real.next_id) - 1));
          real.cancel(target);
          model.cancel(target);
        }
      } else {
        const std::int64_t deadline =
            real.sim.now().nanos() + rng.uniform_int(0, 4) * kMs;
        real.advance_to(deadline);
        model.advance_to(deadline);
        ASSERT_EQ(real.log.size(), model.log.size()) << "op " << op;
      }
    }
    // Drain what's left (self-cancelling periodics and short spawn chains
    // terminate, so a bounded final window settles everything pending).
    const std::int64_t end = real.sim.now().nanos() + 200 * kMs;
    real.advance_to(end);
    model.advance_to(end);

    ASSERT_EQ(real.log.size(), model.log.size());
    for (std::size_t i = 0; i < real.log.size(); ++i) {
      ASSERT_EQ(real.log[i].first, model.log[i].first) << "firing " << i;
      ASSERT_EQ(real.log[i].second, model.log[i].second) << "firing " << i;
    }
    EXPECT_EQ(real.next_id, model.next_id);  // same spawn decisions taken
    EXPECT_GT(real.log.size(), static_cast<std::size_t>(kOpsPerSeed) / 2);
  }
}

// A handful of exact-order pins the random walk would only hit by luck.
TEST(TimerModel, SameInstantOrdersBySchedulingSequence) {
  sim::Simulator sim;
  std::vector<int> order;
  sim.schedule_in(Duration::ms(5), [&order] { order.push_back(0); });
  sim.schedule_in(Duration::ms(5), [&order] { order.push_back(1); });
  sim::EventHandle periodic = sim.schedule_periodic(
      Duration::ms(5), [&order] { order.push_back(2); });
  sim.schedule_in(Duration::ms(5), [&order] { order.push_back(3); });
  sim.run_for(Duration::ms(5));
  periodic.cancel();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TimerModel, PeriodicReArmOrdersAfterCallbackSchedules) {
  // The periodic fires at t=2ms and schedules a one-shot for t=4ms; the
  // re-arm is also due at t=4ms but consumes a later seq, so the one-shot
  // fires first.
  sim::Simulator sim;
  std::vector<int> order;
  int firings = 0;
  sim::EventHandle periodic = sim.schedule_periodic(
      Duration::ms(2), [&sim, &order, &firings, &periodic] {
        order.push_back(1);
        if (++firings == 1) {
          sim.schedule_in(Duration::ms(2), [&order] { order.push_back(2); });
        } else {
          periodic.cancel();  // self-cancel from inside the callback
        }
      });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1}));
  EXPECT_TRUE(sim.empty());
  EXPECT_FALSE(periodic.pending());
}

TEST(TimerModel, CancelledOneShotHandleGoesStale) {
  sim::Simulator sim;
  int fired = 0;
  sim::EventHandle h = sim.schedule_in(Duration::ms(1), [&fired] { ++fired; });
  sim.run_for(Duration::ms(2));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // after firing: stale no-op, not a crash or a double release
  sim.schedule_in(Duration::ms(1), [&fired] { ++fired; });
  sim.run_for(Duration::ms(2));
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace netmon
