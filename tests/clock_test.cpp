#include <gtest/gtest.h>

#include <cmath>

#include "clock/host_clock.hpp"
#include "clock/ntp.hpp"
#include "net/topology.hpp"

namespace netmon::clk {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(HostClock, PerfectClockTracksSimTime) {
  sim::Simulator sim;
  HostClock clock(sim);
  sim.schedule_in(Duration::ms(123), [&] {
    EXPECT_EQ(clock.local_now().nanos(), sim.now().nanos());
    EXPECT_EQ(clock.true_error().nanos(), 0);
  });
  sim.run();
}

TEST(HostClock, OffsetShiftsReading) {
  sim::Simulator sim;
  HostClock clock(sim, Duration::ms(5));
  EXPECT_EQ(clock.local_now().nanos(), Duration::ms(5).nanos());
  EXPECT_EQ(clock.true_error().nanos(), Duration::ms(5).nanos());
}

TEST(HostClock, DriftAccumulates) {
  sim::Simulator sim;
  HostClock clock(sim, Duration::ns(0), 100.0);  // 100 ppm fast
  sim.schedule_in(Duration::sec(10), [&] {
    // 100 ppm over 10 s = 1 ms ahead.
    EXPECT_NEAR(static_cast<double>(clock.true_error().nanos()), 1e6, 1e3);
  });
  sim.run();
}

TEST(HostClock, GranularityQuantizesDownward) {
  sim::Simulator sim;
  HostClock clock(sim, Duration::ns(0), 0.0, Duration::ms(10));
  sim.schedule_in(Duration::ms(27), [&] {
    EXPECT_EQ(clock.local_now().nanos(), Duration::ms(20).nanos());
  });
  sim.run();
}

TEST(HostClock, AdjustSlewsReading) {
  sim::Simulator sim;
  HostClock clock(sim, Duration::ms(-3));
  clock.adjust(Duration::ms(3));
  EXPECT_EQ(clock.true_error().nanos(), 0);
}

class NtpFixture : public ::testing::Test {
 protected:
  NtpFixture() : network(sim, util::Rng(21)) {
    server_host = &network.add_host("timesrv", HostClock(sim));
    client_host = &network.add_host(
        "client", HostClock(sim, Duration::ms(40), 50.0, Duration::us(1)));
    network.connect(*server_host, net::IpAddr(10, 0, 0, 1), *client_host,
                    net::IpAddr(10, 0, 0, 2), 24, 10e6, Duration::us(200));
    network.auto_route();
    server = std::make_unique<NtpServer>(*server_host);
  }
  sim::Simulator sim;
  net::Network network;
  net::Host* server_host;
  net::Host* client_host;
  std::unique_ptr<NtpServer> server;
};

TEST_F(NtpFixture, SinglePollMeasuresOffsetAccurately) {
  NtpClient client(*client_host, net::IpAddr(10, 0, 0, 1));
  client.poll_once();
  sim.run();
  EXPECT_EQ(client.responses(), 1u);
  // Client is 40 ms ahead: measured offset (server - client) ~ -40 ms,
  // accurate to well under a millisecond on a symmetric path.
  EXPECT_NEAR(static_cast<double>(client.last_measured_offset().nanos()),
              -40e6, 1e5);
}

TEST_F(NtpFixture, PeriodicSyncConvergesAndHolds) {
  NtpClient::Config cfg;
  cfg.poll_interval = Duration::sec(4);
  NtpClient client(*client_host, net::IpAddr(10, 0, 0, 1), cfg);
  client.start();
  sim.run_for(Duration::sec(120));
  client.stop();
  // 40 ms initial error + 50 ppm drift must be held to sub-millisecond.
  EXPECT_LT(std::abs(static_cast<double>(
                client_host->clock().true_error().nanos())),
            1e6);
  EXPECT_GE(client.responses(), 25u);
}

TEST_F(NtpFixture, LargeOffsetSteppedImmediately) {
  client_host->clock().adjust(Duration::sec(5));  // gross error
  NtpClient client(*client_host, net::IpAddr(10, 0, 0, 1));
  client.poll_once();
  sim.run();
  // One exchange steps the clock to within path-asymmetry error.
  EXPECT_LT(std::abs(static_cast<double>(
                client_host->clock().true_error().nanos())),
            1e6);
}

TEST_F(NtpFixture, ServerCountsRequests) {
  NtpClient client(*client_host, net::IpAddr(10, 0, 0, 1));
  client.poll_once();
  sim.run();
  EXPECT_EQ(server->requests_served(), 1u);
}

TEST_F(NtpFixture, BytesSentAccounting) {
  NtpClient client(*client_host, net::IpAddr(10, 0, 0, 1));
  client.poll_once();
  client.poll_once();
  sim.run();
  EXPECT_EQ(client.polls_sent(), 2u);
  EXPECT_EQ(client.bytes_sent(), 2u * (48 + 28 + 18));
}

TEST_F(NtpFixture, UnreachableServerLeavesClockUntouched) {
  server_host->set_up(false);
  const auto before = client_host->clock().true_error();
  NtpClient client(*client_host, net::IpAddr(10, 0, 0, 1));
  client.poll_once();
  sim.run_for(Duration::sec(5));
  EXPECT_EQ(client.responses(), 0u);
  // Drift continues but no NTP-induced step happened.
  EXPECT_NEAR(static_cast<double>(client_host->clock().true_error().nanos()),
              static_cast<double>(before.nanos()) + 50e-6 * 5e9, 1e4);
}

}  // namespace
}  // namespace netmon::clk
