// Fault-injection engine tests: injector unit behavior (link flaps, packet
// chaos windows, clock steps, sensor mode switches, arm-time validation) and
// the deterministic chaos soak — link flaps + active-server crash + a
// permanently hung sensor, with the supervision layer keeping the monitor
// alive and the resource manager failing over within bounded time. Two runs
// with the same seed must produce identical traces.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "apps/testbed.hpp"
#include "core/scalable_monitor.hpp"
#include "fault/chaos_sensor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "manager/resource_manager.hpp"
#include "sim/simulator.hpp"

namespace netmon::fault {
namespace {

using sim::Duration;
using sim::TimePoint;

net::Link& link_named(net::Network& network, const std::string& name) {
  for (const auto& link : network.links()) {
    if (link->name() == name) return *link;
  }
  throw std::runtime_error("no link " + name);
}

// --- injector units ----------------------------------------------------------

TEST(FaultInjector, ArmRejectsUnknownTargets) {
  sim::Simulator sim;
  FaultInjector injector(sim);
  FaultPlan plan;
  plan.link_down(Duration::sec(1), "no-such-link");
  EXPECT_THROW(injector.arm(plan), std::invalid_argument);
  // Nothing was scheduled: the simulator drains immediately.
  sim.run();
  EXPECT_TRUE(injector.log().empty());
  EXPECT_EQ(injector.stats().faults_applied, 0u);
}

TEST(FaultInjector, ArmRejectsBadProbability) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);
  FaultInjector injector(sim);
  net::Link& link = link_named(bed.network(), "server0<->backbone");
  injector.register_link(link.name(), link);
  FaultPlan plan;
  plan.packet_chaos(Duration::sec(1), link.name(), Duration::sec(1), 1.5);
  EXPECT_THROW(injector.arm(plan), std::invalid_argument);
}

TEST(FaultInjector, ArmRejectsMalformedFaults) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);
  FaultInjector injector(sim);
  net::Link& link = link_named(bed.network(), "server0<->backbone");
  injector.register_link(link.name(), link);
  injector.register_host("server0", bed.server(0));

  {  // negative flap up_for would run cycles backwards in time
    FaultPlan plan;
    plan.link_flap(Duration::sec(1), link.name(), 2, Duration::ms(100),
                   Duration::ms(-100));
    EXPECT_THROW(injector.arm(plan), std::invalid_argument);
  }
  {  // negative chaos extra_delay would deliver frames before they were sent
    FaultPlan plan;
    plan.packet_chaos(Duration::sec(1), link.name(), Duration::sec(1), 0.1,
                      0.0, Duration::ms(-5));
    EXPECT_THROW(injector.arm(plan), std::invalid_argument);
  }
  {  // a fault scheduled before arm time can never fire
    FaultPlan plan;
    plan.host_crash(Duration::ms(-1), "server0");
    EXPECT_THROW(injector.arm(plan), std::invalid_argument);
  }
  // Validation happens before scheduling: nothing leaked into the simulator.
  sim.run();
  EXPECT_TRUE(injector.log().empty());
  EXPECT_EQ(injector.stats().faults_applied, 0u);
}

TEST(FaultInjector, LogTimestampsAreMonotoneAcrossOverlappingFaults) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 2;
  apps::Testbed bed(sim, options);
  FaultInjector injector(sim);
  for (const auto& link : bed.network().links()) {
    injector.register_link(link->name(), *link);
  }
  injector.register_host("client0", bed.client(0));

  // Interleaved flaps, chaos windows, and crash/restart whose applications
  // overlap in time; the log must still come out time-ordered.
  FaultPlan plan;
  plan.seed = 5;
  plan.link_flap(Duration::ms(100), "client0<->backbone", 4, Duration::ms(70),
                 Duration::ms(30));
  plan.link_flap(Duration::ms(150), "client1<->backbone", 3, Duration::ms(40),
                 Duration::ms(110));
  plan.packet_chaos(Duration::ms(50), "server0<->backbone", Duration::ms(400),
                    0.3);
  plan.host_crash(Duration::ms(200), "client0");
  plan.host_restart(Duration::ms(300), "client0");
  injector.arm(plan);
  sim.run();

  const auto& log = injector.log();
  ASSERT_GT(log.size(), 10u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].at.nanos(), log[i].at.nanos());
  }
  EXPECT_EQ(injector.stats().link_transitions, 14u);  // 4*2 + 3*2 edges
  EXPECT_EQ(injector.stats().host_transitions, 2u);
}

TEST(FaultInjector, LinkFlapTogglesLinkOnSchedule) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);
  net::Link& link = link_named(bed.network(), "client0<->backbone");

  FaultInjector injector(sim);
  injector.register_link(link.name(), link);
  FaultPlan plan;
  plan.link_flap(Duration::sec(1), link.name(), /*cycles=*/2,
                 /*down_for=*/Duration::ms(400), /*up_for=*/Duration::ms(600));
  injector.arm(plan);

  sim.run_until(TimePoint::from_nanos(Duration::ms(1200).nanos()));
  EXPECT_FALSE(link.up());  // inside the second down window (2.0s..2.4s)?
  sim.run_until(TimePoint::from_nanos(Duration::ms(2200).nanos()));
  EXPECT_FALSE(link.up());  // second cycle's down window
  sim.run_until(TimePoint::from_nanos(Duration::sec(5).nanos()));
  EXPECT_TRUE(link.up());  // plan over, link restored

  EXPECT_EQ(injector.stats().faults_applied, 1u);
  EXPECT_EQ(injector.stats().link_transitions, 4u);  // 2 downs + 2 ups
  // Log: the flap announcement plus every transition, in time order.
  ASSERT_EQ(injector.log().size(), 5u);
  for (std::size_t i = 1; i < injector.log().size(); ++i) {
    EXPECT_GE(injector.log()[i].at.nanos(), injector.log()[i - 1].at.nanos());
  }
}

TEST(FaultInjector, PacketChaosWindowDropsFrames) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);

  core::ScalableMonitor::Config cfg;
  cfg.manager.timeout = Duration::ms(200);
  cfg.manager.retries = 0;
  core::ScalableMonitor monitor(bed.network(), bed.station(), cfg);

  net::Link& link = link_named(bed.network(), "server0<->backbone");
  FaultInjector injector(sim);
  injector.register_link(link.name(), link);
  FaultPlan plan;
  plan.seed = 99;
  // Total loss on the server's link from 2s to 5s.
  plan.packet_chaos(Duration::sec(2), link.name(), Duration::sec(3),
                    /*drop=*/1.0);
  injector.arm(plan);

  core::MonitorRequest request;
  request.paths.push_back(
      core::PathRequest{bed.path(0, 0), {core::Metric::kReachability}});
  request.mode = core::MonitorRequest::Mode::kPeriodic;
  request.period = Duration::ms(500);
  int good = 0, bad = 0;
  monitor.director().submit(request, [&](const core::PathMetricTuple& t) {
    (t.value.valid && t.value.value > 0.5) ? ++good : ++bad;
  });
  sim.run_until(TimePoint::from_nanos(Duration::sec(8).nanos()));

  // Polls inside the window lost their frames and timed out; polls outside
  // went through.
  EXPECT_GT(good, 0);
  EXPECT_GT(bad, 0);
  EXPECT_GT(link.fault_stats().frames_dropped, 0u);
  EXPECT_EQ(injector.frame_stats().frames_dropped,
            link.fault_stats().frames_dropped);
  EXPECT_EQ(injector.stats().chaos_windows, 1u);
  // Window open and close both made the log.
  ASSERT_EQ(injector.log().size(), 2u);
  EXPECT_EQ(injector.log()[1].at.nanos(), Duration::sec(5).nanos());
  // After the window the hook is gone: later frames are untouched.
  const auto dropped_at_close = injector.frame_stats().frames_dropped;
  sim.run_until(TimePoint::from_nanos(Duration::sec(10).nanos()));
  EXPECT_EQ(injector.frame_stats().frames_dropped, dropped_at_close);
}

TEST(FaultInjector, ClockStepAdjustsHostClock) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);

  FaultInjector injector(sim);
  injector.register_host("server0", bed.server(0));
  const auto before = bed.server(0).clock().configured_offset();

  FaultPlan plan;
  plan.clock_step(Duration::sec(1), "server0", Duration::ms(500));
  injector.arm(plan);
  sim.run();

  const auto after = bed.server(0).clock().configured_offset();
  EXPECT_EQ((after - before).nanos(), Duration::ms(500).nanos());
  EXPECT_EQ(injector.stats().clock_steps, 1u);
}

TEST(FaultInjector, HostCrashAndRestart) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);

  FaultInjector injector(sim);
  injector.register_host("server0", bed.server(0));
  FaultPlan plan;
  plan.host_crash(Duration::sec(1), "server0");
  plan.host_restart(Duration::sec(3), "server0");
  injector.arm(plan);

  sim.run_until(TimePoint::from_nanos(Duration::sec(2).nanos()));
  EXPECT_FALSE(bed.server(0).up());
  sim.run_until(TimePoint::from_nanos(Duration::sec(4).nanos()));
  EXPECT_TRUE(bed.server(0).up());
  EXPECT_EQ(injector.stats().host_transitions, 2u);
}

TEST(FaultInjector, PartitionIsolatesHostWithoutKillingIt) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);

  FaultInjector injector(sim);
  injector.register_host("server0", bed.server(0));
  FaultPlan plan;
  plan.partition(Duration::sec(1), "server0", Duration::sec(2));
  injector.arm(plan);

  sim.run_until(TimePoint::from_nanos(Duration::sec(2).nanos()));
  // Unreachable, not dead: the host is up but every interface is down.
  EXPECT_TRUE(bed.server(0).up());
  for (const auto& nic : bed.server(0).nics()) EXPECT_FALSE(nic->up());

  sim.run_until(TimePoint::from_nanos(Duration::sec(4).nanos()));
  for (const auto& nic : bed.server(0).nics()) EXPECT_TRUE(nic->up());
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().faults_applied, 1u);
}

TEST(FaultInjector, PartitionValidation) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);
  FaultInjector injector(sim);
  injector.register_host("server0", bed.server(0));

  {  // unknown host
    FaultPlan plan;
    plan.partition(Duration::sec(1), "no-such-host", Duration::sec(1));
    EXPECT_THROW(injector.arm(plan), std::invalid_argument);
  }
  {  // non-positive window
    FaultPlan plan;
    plan.partition(Duration::sec(1), "server0", Duration::sec(0));
    EXPECT_THROW(injector.arm(plan), std::invalid_argument);
  }
  sim.run();
  EXPECT_TRUE(injector.log().empty());
}

TEST(FaultInjector, PartitionHealYieldsToCrash) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);

  FaultInjector injector(sim);
  injector.register_host("server0", bed.server(0));
  // The host crashes inside the partition window: the heal must not raise
  // the interfaces of a dead host — only the restart may.
  FaultPlan plan;
  plan.partition(Duration::sec(1), "server0", Duration::sec(2));
  plan.host_crash(Duration::sec(2), "server0");
  plan.host_restart(Duration::sec(5), "server0");
  injector.arm(plan);

  sim.run_until(TimePoint::from_nanos(Duration::sec(4).nanos()));
  EXPECT_FALSE(bed.server(0).up());
  for (const auto& nic : bed.server(0).nics()) EXPECT_FALSE(nic->up());

  sim.run_until(TimePoint::from_nanos(Duration::sec(6).nanos()));
  EXPECT_TRUE(bed.server(0).up());
  for (const auto& nic : bed.server(0).nics()) EXPECT_TRUE(nic->up());
}

// --- chaos sensor ------------------------------------------------------------

TEST(ChaosSensor, ModesInjectTheirPathologies) {
  sim::Simulator sim;
  class Const : public core::NetworkSensor {
   public:
    explicit Const(sim::Simulator& sim) : sim_(sim) {}
    std::string name() const override { return "const"; }
    bool supports(core::Metric) const override { return true; }
    void measure(const core::Path&, core::Metric, Done done) override {
      done(core::MetricValue::of(5.0, sim_.now()));
    }
   private:
    sim::Simulator& sim_;
  } inner(sim);
  ChaosSensor chaos(sim, inner);
  const core::Path p(
      core::ProcessEndpoint{"a", net::IpAddr(10, 0, 0, 1), 1},
      core::ProcessEndpoint{"b", net::IpAddr(10, 0, 0, 2), 1});

  int calls = 0;
  core::MetricValue last;
  auto capture = [&](core::MetricValue v) {
    ++calls;
    last = v;
  };

  chaos.measure(p, core::Metric::kThroughput, capture);  // passthrough
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(last.value, 5.0);
  const auto seen_at = last.measured_at;

  chaos.set_mode(ChaosSensor::Mode::kFail);
  chaos.measure(p, core::Metric::kThroughput, capture);
  EXPECT_EQ(calls, 2);
  EXPECT_FALSE(last.valid);

  chaos.set_mode(ChaosSensor::Mode::kStaleValue);
  sim.run_for(Duration::sec(5));
  chaos.measure(p, core::Metric::kThroughput, capture);
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(last.valid);
  EXPECT_DOUBLE_EQ(last.value, 5.0);
  // The lie is detectable: the timestamp never advanced.
  EXPECT_EQ(last.measured_at.nanos(), seen_at.nanos());

  chaos.set_mode(ChaosSensor::Mode::kHang);
  chaos.measure(p, core::Metric::kThroughput, capture);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(chaos.held_callbacks(), 1u);

  chaos.set_mode(ChaosSensor::Mode::kDoubleDone);
  chaos.measure(p, core::Metric::kThroughput, capture);
  EXPECT_EQ(calls, 5);  // invoked twice

  EXPECT_EQ(chaos.stats().intercepted, 5u);
  EXPECT_EQ(chaos.stats().hangs, 1u);
  EXPECT_EQ(chaos.stats().double_dones, 1u);
  EXPECT_EQ(chaos.stats().stale_served, 1u);
  EXPECT_EQ(chaos.stats().failures_injected, 1u);
}

// --- deterministic chaos soak ------------------------------------------------

struct SoakResult {
  std::string trace;
  std::uint64_t tuples_mid = 0;
  std::uint64_t tuples_end = 0;
  std::uint64_t reconfigurations = 0;
  std::int64_t reconfig_at_ns = -1;
  bool failed_over_to_server1 = false;
  std::uint64_t timeouts = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t hangs = 0;
  std::size_t queued_at_end = 0;
};

SoakResult run_soak(std::uint64_t seed) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 2;
  options.clients = 2;
  options.seed = seed;
  apps::Testbed bed(sim, options);

  core::ScalableMonitor::Config cfg;
  cfg.manager.timeout = Duration::ms(250);
  cfg.manager.retries = 1;
  cfg.supervision.deadline = Duration::sec(2);
  cfg.supervision.max_retries = 1;
  cfg.supervision.backoff_base = Duration::ms(100);
  cfg.supervision.breaker_threshold = 3;
  cfg.supervision.breaker_open_for = Duration::sec(8);
  core::ScalableMonitor monitor(bed.network(), bed.station(), cfg);

  // Chaos-wrapped SNMP sensor as the primary, the raw sensor as fallback.
  ChaosSensor chaos(sim, monitor.sensor());
  monitor.director().register_sensor(core::Metric::kReachability, &chaos);
  monitor.director().register_fallback(core::Metric::kReachability,
                                       &monitor.sensor());

  mgr::ResourceManager::Config rm_cfg;
  rm_cfg.mode = core::MonitorRequest::Mode::kPeriodic;
  rm_cfg.period = Duration::sec(1);
  rm_cfg.metrics = {core::Metric::kReachability};
  rm_cfg.strikes = 2;
  rm_cfg.failure_fraction = 0.5;
  mgr::ResourceManager manager(monitor.director(), rm_cfg);

  SoakResult result;
  std::ostringstream trace;
  manager.set_reconfiguration_callback(
      [&](const mgr::ReconfigurationEvent& e) {
        trace << "reconfig t=" << e.at.nanos() << " "
              << e.old_server.to_string() << "->" << e.new_server.to_string()
              << "\n";
        if (result.reconfig_at_ns < 0) result.reconfig_at_ns = e.at.nanos();
      });

  FaultInjector injector(sim);
  for (const auto& link : bed.network().links()) {
    injector.register_link(link->name(), *link);
  }
  injector.register_host("server0", bed.server(0));
  injector.register_sensor("primary", chaos);

  FaultPlan plan;
  plan.seed = seed;
  plan.link_flap(Duration::sec(3), "client0<->backbone", /*cycles=*/2,
                 Duration::ms(400), Duration::ms(400));
  plan.host_crash(Duration::sec(10), "server0");
  plan.sensor_mode(Duration::sec(20), "primary", ChaosSensor::Mode::kHang);
  injector.arm(plan);

  mgr::ManagedApplication app;
  app.name = "rtds";
  app.server_pool = {bed.server_ip(0), bed.server_ip(1)};
  app.client_pool = {bed.client_ip(0), bed.client_ip(1)};
  app.port = 5000;
  manager.manage(app, bed.server_ip(0));

  sim.run_until(TimePoint::from_nanos(Duration::sec(25).nanos()));
  result.tuples_mid = monitor.director().stats().tuples_reported;
  sim.run_until(TimePoint::from_nanos(Duration::sec(40).nanos()));
  result.tuples_end = monitor.director().stats().tuples_reported;

  result.reconfigurations = manager.reconfigurations();
  result.failed_over_to_server1 =
      manager.active_server("rtds") == bed.server_ip(1);
  const core::DirectorStats& stats = monitor.director().stats();
  result.timeouts = stats.timeouts;
  result.fallbacks = stats.fallbacks;
  result.hangs = chaos.stats().hangs;
  result.queued_at_end = monitor.director().sequencer().queued();

  // Full run trace: every injected fault with its timestamp, the
  // supervision counters, and the manager's view. Any nondeterminism
  // anywhere in the stack shows up here.
  for (const FaultInjector::FaultRecord& record : injector.log()) {
    trace << "fault t=" << record.at.nanos() << " " << record.description
          << "\n";
  }
  trace << "stats started=" << stats.measurements_started
        << " completed=" << stats.measurements_completed
        << " failed=" << stats.measurements_failed
        << " tuples=" << stats.tuples_reported
        << " timeouts=" << stats.timeouts << " late=" << stats.late_completions
        << " retries=" << stats.retries << " fallbacks=" << stats.fallbacks
        << " skips=" << stats.breaker_skips << " exhausted=" << stats.exhausted
        << "\n";
  trace << "seq completed=" << monitor.director().sequencer().completed()
        << " abandoned=" << monitor.director().sequencer().abandoned()
        << " double=" << monitor.director().sequencer().double_dones() << "\n";
  trace << "mgr tuples=" << manager.tuples_consumed()
        << " degraded=" << manager.degraded_tuples()
        << " stale=" << manager.stale_tuples()
        << " reconfigs=" << manager.reconfigurations() << "\n";
  trace << "db records=" << monitor.database().records_written() << "\n";
  result.trace = trace.str();
  return result;
}

TEST(ChaosSoak, SupervisedMonitorSurvivesScriptedChaos) {
  const SoakResult result = run_soak(1234);

  // The active server crashed at t=10s; the manager must fail over to the
  // replica within a bounded number of rounds (well before t=18s here).
  EXPECT_EQ(result.reconfigurations, 1u);
  EXPECT_TRUE(result.failed_over_to_server1);
  ASSERT_GE(result.reconfig_at_ns, 0);
  EXPECT_GT(result.reconfig_at_ns, Duration::sec(10).nanos());
  EXPECT_LT(result.reconfig_at_ns, Duration::sec(18).nanos());

  // The permanently hung sensor (from t=20s) wedged real slots...
  EXPECT_GT(result.hangs, 0u);
  EXPECT_GT(result.timeouts, 0u);
  // ...but the deadline reclaimed them and the chain degraded to the
  // fallback: tuples kept flowing to the very end.
  EXPECT_GT(result.fallbacks, 0u);
  EXPECT_GT(result.tuples_end, result.tuples_mid + 10);
  // No unbounded backlog behind the hung sensor.
  EXPECT_LT(result.queued_at_end, 16u);
}

TEST(ChaosSoak, SameSeedSameTrace) {
  const SoakResult a = run_soak(777);
  const SoakResult b = run_soak(777);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.tuples_end, b.tuples_end);
  EXPECT_EQ(a.reconfig_at_ns, b.reconfig_at_ns);
}

}  // namespace
}  // namespace netmon::fault
