// Supervision-layer tests (DESIGN.md §9): sequencer contract violations,
// per-attempt deadlines, retry with backoff, circuit breaking, fallback
// chains, and stale re-reporting — plus the SNMP sensor's behavior when
// polls exhaust their retries under the director.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <optional>

#include "apps/testbed.hpp"
#include "core/scalable_monitor.hpp"
#include "core/sensor_director.hpp"
#include "core/sequencer.hpp"
#include "sim/simulator.hpp"

namespace netmon::core {
namespace {

using sim::Duration;
using sim::TimePoint;

Path make_path(int a, int b) {
  return Path(ProcessEndpoint{"p", net::IpAddr(10, 0, 0, std::uint8_t(a)), 1},
              ProcessEndpoint{"q", net::IpAddr(10, 0, 0, std::uint8_t(b)), 1});
}

// --- sequencer contract violations -------------------------------------------

TEST(Sequencer, DoubleDoneIsCountedNoOp) {
  TestSequencer seq(1);
  TestSequencer::Done saved;
  seq.enqueue([&](TestSequencer::Done done) { saved = std::move(done); });
  EXPECT_EQ(seq.in_flight(), 1u);

  saved();
  EXPECT_EQ(seq.in_flight(), 0u);
  EXPECT_EQ(seq.completed(), 1u);

  saved();  // contract violation: absorbed, counted, changes nothing
  saved();
  EXPECT_EQ(seq.in_flight(), 0u);
  EXPECT_EQ(seq.completed(), 1u);
  EXPECT_EQ(seq.double_dones(), 2u);

  bool ran = false;
  seq.enqueue([&](TestSequencer::Done done) {
    ran = true;
    done();
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(seq.completed(), 2u);
}

TEST(Sequencer, AbandonedDoneReleasesSlot) {
  TestSequencer seq(1);
  // The task drops its Done without calling it — a wedged sensor that lost
  // its callback. The slot must come back anyway.
  seq.enqueue([](TestSequencer::Done done) { (void)done; });
  EXPECT_EQ(seq.in_flight(), 0u);
  EXPECT_EQ(seq.abandoned(), 1u);
  EXPECT_EQ(seq.completed(), 0u);

  bool ran = false;
  seq.enqueue([&](TestSequencer::Done done) {
    ran = true;
    done();
  });
  EXPECT_TRUE(ran);
}

TEST(Sequencer, AbandonedDoneUnblocksQueuedTask) {
  TestSequencer seq(1);
  TestSequencer::Done held;
  bool second_ran = false;
  seq.enqueue([&](TestSequencer::Done done) { held = std::move(done); });
  seq.enqueue([&](TestSequencer::Done done) {
    second_ran = true;
    done();
  });
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(seq.queued(), 1u);
  held = nullptr;  // every copy destroyed uncalled
  EXPECT_TRUE(second_ran);
  EXPECT_EQ(seq.abandoned(), 1u);
}

TEST(Sequencer, AccountingBalancesAcrossContractViolations) {
  TestSequencer seq(2);
  TestSequencer::Done held;
  // A mix of clean completions, a double done, an abandoned done, and a
  // task still in flight: launched must always equal
  // completed + abandoned + in_flight.
  seq.enqueue([](TestSequencer::Done done) { done(); });
  seq.enqueue([&](TestSequencer::Done done) {
    done();
    done();  // violation: absorbed
  });
  seq.enqueue([](TestSequencer::Done done) { (void)done; });  // abandoned
  seq.enqueue([&](TestSequencer::Done done) { held = std::move(done); });
  EXPECT_EQ(seq.launched(), 4u);
  EXPECT_EQ(seq.completed(), 2u);
  EXPECT_EQ(seq.abandoned(), 1u);
  EXPECT_EQ(seq.in_flight(), 1u);
  EXPECT_NO_THROW(seq.check_consistency());

  held();  // resolve the last one
  EXPECT_NO_THROW(seq.check_consistency());
  EXPECT_EQ(seq.completed(), 3u);
}

TEST(Sequencer, LaunchedCounterIsMonotoneThroughQueueing) {
  TestSequencer seq(1);
  TestSequencer::Done held;
  seq.enqueue([&](TestSequencer::Done done) { held = std::move(done); });
  // Queued tasks are not launched until a slot frees.
  seq.enqueue([](TestSequencer::Done done) { done(); });
  seq.enqueue([](TestSequencer::Done done) { done(); });
  EXPECT_EQ(seq.launched(), 1u);
  EXPECT_EQ(seq.queued(), 2u);
  held();
  EXPECT_EQ(seq.launched(), 3u);
  EXPECT_EQ(seq.queued(), 0u);
  EXPECT_NO_THROW(seq.check_consistency());
}

TEST(Sequencer, DoneOutlivingSequencerIsNoOp) {
  TestSequencer::Done saved;
  {
    TestSequencer seq(1);
    seq.enqueue([&](TestSequencer::Done done) { saved = std::move(done); });
    EXPECT_EQ(seq.in_flight(), 1u);
  }
  saved();          // sequencer is gone; must not touch freed memory
  saved = nullptr;  // destruction after death must be a no-op too
}

// --- scripted sensor ---------------------------------------------------------

class ScriptedSensor : public NetworkSensor {
 public:
  enum class Behavior { kSucceed, kFail, kHang, kSlow };

  ScriptedSensor(sim::Simulator& sim, std::string name, double value)
      : sim_(sim), name_(std::move(name)), value_(value) {}

  std::string name() const override { return name_; }
  bool supports(Metric) const override { return true; }
  void measure(const Path& path, Metric, Done done) override {
    ++calls;
    Behavior b = behavior;
    if (!script.empty()) {
      b = script.front();
      script.pop_front();
    }
    if (fail_destination && path.destination().host == *fail_destination) {
      b = Behavior::kFail;  // a dead target, independent of sensor health
    }
    switch (b) {
      case Behavior::kSucceed:
        sim_.schedule_in(delay, [this, done = std::move(done)] {
          done(MetricValue::of(value_, sim_.now()));
        });
        return;
      case Behavior::kFail:
        sim_.schedule_in(delay, [this, done = std::move(done)] {
          done(MetricValue::failed(sim_.now()));
        });
        return;
      case Behavior::kHang:
        held.push_back(std::move(done));
        return;
      case Behavior::kSlow:
        sim_.schedule_in(slow_delay, [this, done = std::move(done)] {
          done(MetricValue::of(value_, sim_.now()));
        });
        return;
    }
  }

  Behavior behavior = Behavior::kSucceed;
  std::deque<Behavior> script;  // per-call overrides, consumed first
  std::optional<net::IpAddr> fail_destination;  // always fail toward this host
  Duration delay = Duration::ms(10);
  Duration slow_delay = Duration::sec(5);
  int calls = 0;
  std::vector<Done> held;

 private:
  sim::Simulator& sim_;
  std::string name_;
  double value_;
};

std::vector<PathMetricTuple> run_once(sim::Simulator& sim,
                                      SensorDirector& director,
                                      const Path& path, Metric metric) {
  MonitorRequest request;
  request.paths.push_back(PathRequest{path, {metric}});
  std::vector<PathMetricTuple> tuples;
  director.submit(request, [&](const PathMetricTuple& t) {
    tuples.push_back(t);
  });
  sim.run();
  return tuples;
}

// --- deadline ---------------------------------------------------------------

TEST(Supervision, DeadlineReclaimsSlotFromHungSensor) {
  sim::Simulator sim;
  SupervisionConfig sup;
  sup.deadline = Duration::sec(1);
  SensorDirector director(sim, 1, sup);
  ScriptedSensor hung(sim, "hung", 1.0);
  hung.behavior = ScriptedSensor::Behavior::kHang;
  director.register_sensor(Metric::kThroughput, &hung);

  auto tuples = run_once(sim, director, make_path(1, 2), Metric::kThroughput);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_FALSE(tuples[0].value.valid);  // failed, not silently missing
  EXPECT_EQ(sim.now().nanos(), Duration::sec(1).nanos());
  EXPECT_EQ(director.stats().timeouts, 1u);
  EXPECT_EQ(director.stats().measurements_failed, 1u);
  // The slot came back even though the sensor still holds its Done.
  EXPECT_EQ(director.sequencer().in_flight(), 0u);
  EXPECT_EQ(hung.held.size(), 1u);

  // The director keeps working afterwards.
  hung.behavior = ScriptedSensor::Behavior::kSucceed;
  auto again = run_once(sim, director, make_path(1, 2), Metric::kThroughput);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(again[0].value.valid);
}

TEST(Supervision, LateCompletionAfterTimeoutIsCountedNoOp) {
  sim::Simulator sim;
  SupervisionConfig sup;
  sup.deadline = Duration::sec(1);
  SensorDirector director(sim, 1, sup);
  ScriptedSensor slow(sim, "slow", 7.0);
  slow.behavior = ScriptedSensor::Behavior::kSlow;  // completes at t=5s
  director.register_sensor(Metric::kThroughput, &slow);

  auto tuples = run_once(sim, director, make_path(1, 2), Metric::kThroughput);
  // Exactly one tuple: the timeout failure. The late done at 5s must not
  // produce a second report.
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_FALSE(tuples[0].value.valid);
  EXPECT_EQ(director.stats().timeouts, 1u);
  EXPECT_EQ(director.stats().late_completions, 1u);
  EXPECT_EQ(director.stats().tuples_reported, 1u);
}

// --- retry ------------------------------------------------------------------

TEST(Supervision, RetryAfterFailureYieldsRetriedQuality) {
  sim::Simulator sim;
  SupervisionConfig sup;
  sup.max_retries = 2;
  sup.backoff_base = Duration::ms(100);
  SensorDirector director(sim, 1, sup);
  ScriptedSensor flaky(sim, "flaky", 3.0);
  flaky.script = {ScriptedSensor::Behavior::kFail,
                  ScriptedSensor::Behavior::kFail,
                  ScriptedSensor::Behavior::kSucceed};
  director.register_sensor(Metric::kThroughput, &flaky);

  auto tuples = run_once(sim, director, make_path(1, 2), Metric::kThroughput);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_TRUE(tuples[0].value.valid);
  EXPECT_DOUBLE_EQ(tuples[0].value.value, 3.0);
  EXPECT_EQ(tuples[0].value.quality, SampleQuality::kRetried);
  EXPECT_EQ(flaky.calls, 3);
  EXPECT_EQ(director.stats().retries, 2u);
  EXPECT_EQ(director.stats().measurements_failed, 0u);
  // Two backoffs happened: strictly later than the three attempt delays.
  EXPECT_GT(sim.now().nanos(), (Duration::ms(30) + Duration::ms(200)).nanos());
}

TEST(Supervision, RetryReleasesSlotDuringBackoff) {
  sim::Simulator sim;
  SupervisionConfig sup;
  sup.max_retries = 1;
  sup.backoff_base = Duration::sec(1);
  SensorDirector director(sim, 1, sup);
  ScriptedSensor flaky(sim, "flaky", 3.0);
  flaky.script = {ScriptedSensor::Behavior::kFail};  // then succeeds
  director.register_sensor(Metric::kThroughput, &flaky);

  MonitorRequest request;
  request.paths.push_back(PathRequest{make_path(1, 2), {Metric::kThroughput}});
  request.paths.push_back(PathRequest{make_path(1, 3), {Metric::kThroughput}});
  std::vector<PathMetricTuple> tuples;
  director.submit(request, [&](const PathMetricTuple& t) {
    tuples.push_back(t);
  });
  sim.run();
  ASSERT_EQ(tuples.size(), 2u);
  // While path(1,2) waited out its backoff, the second path used the slot:
  // its fresh sample completed before the retried one.
  EXPECT_EQ(tuples[0].path, make_path(1, 3));
  EXPECT_EQ(tuples[0].value.quality, SampleQuality::kFresh);
  EXPECT_EQ(tuples[1].value.quality, SampleQuality::kRetried);
}

// --- fallback chain ---------------------------------------------------------

TEST(Supervision, FallbackSensorProducesFallbackQuality) {
  sim::Simulator sim;
  SensorDirector director(sim, 1);
  ScriptedSensor primary(sim, "primary", 9.0);
  ScriptedSensor backup(sim, "backup", 4.0);
  primary.behavior = ScriptedSensor::Behavior::kFail;
  director.register_sensor(Metric::kThroughput, &primary);
  director.register_fallback(Metric::kThroughput, &backup);
  ASSERT_EQ(director.chain_for(Metric::kThroughput).size(), 2u);

  auto tuples = run_once(sim, director, make_path(1, 2), Metric::kThroughput);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_TRUE(tuples[0].value.valid);
  EXPECT_DOUBLE_EQ(tuples[0].value.value, 4.0);  // the backup's reading
  EXPECT_EQ(tuples[0].value.quality, SampleQuality::kFallback);
  EXPECT_EQ(director.stats().fallbacks, 1u);
  EXPECT_EQ(primary.calls, 1);
  EXPECT_EQ(backup.calls, 1);
}

TEST(Supervision, RegisteringPrimaryClearsChain) {
  sim::Simulator sim;
  SensorDirector director(sim, 1);
  ScriptedSensor a(sim, "a", 1.0), b(sim, "b", 2.0);
  director.register_sensor(Metric::kThroughput, &a);
  director.register_fallback(Metric::kThroughput, &b);
  director.register_sensor(Metric::kThroughput, &b);
  EXPECT_EQ(director.chain_for(Metric::kThroughput).size(), 1u);
  EXPECT_EQ(director.sensor_for(Metric::kThroughput), &b);
}

// --- circuit breaker --------------------------------------------------------

TEST(Supervision, BreakerOpensSkipsAndRecovers) {
  sim::Simulator sim;
  SupervisionConfig sup;
  sup.breaker_threshold = 2;
  sup.breaker_open_for = Duration::sec(10);
  SensorDirector director(sim, 1, sup);
  ScriptedSensor primary(sim, "primary", 9.0);
  ScriptedSensor backup(sim, "backup", 4.0);
  primary.behavior = ScriptedSensor::Behavior::kFail;
  director.register_sensor(Metric::kThroughput, &primary);
  director.register_fallback(Metric::kThroughput, &backup);
  const Path p = make_path(1, 2);

  run_once(sim, director, p, Metric::kThroughput);  // failure 1
  run_once(sim, director, p, Metric::kThroughput);  // failure 2 -> trips
  const SensorHealth* health = director.health(&primary, p);
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->state, BreakerState::kOpen);
  EXPECT_EQ(health->trips, 1u);
  EXPECT_EQ(primary.calls, 2);

  // While open the primary is skipped outright.
  auto skipped = run_once(sim, director, p, Metric::kThroughput);
  EXPECT_EQ(primary.calls, 2);
  EXPECT_EQ(director.stats().breaker_skips, 1u);
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_EQ(skipped[0].value.quality, SampleQuality::kFallback);

  // After the open window a half-open probe is admitted; success recloses.
  primary.behavior = ScriptedSensor::Behavior::kSucceed;
  sim.run_for(Duration::sec(11));
  auto probed = run_once(sim, director, p, Metric::kThroughput);
  EXPECT_EQ(primary.calls, 3);
  ASSERT_EQ(probed.size(), 1u);
  EXPECT_TRUE(probed[0].value.valid);
  EXPECT_EQ(probed[0].value.quality, SampleQuality::kFresh);
  EXPECT_EQ(director.health(&primary, p)->state, BreakerState::kClosed);
  EXPECT_EQ(director.health(&primary, p)->consecutive_failures, 0);
}

TEST(Supervision, BreakerIsScopedPerSensorAndPath) {
  sim::Simulator sim;
  SupervisionConfig sup;
  sup.breaker_threshold = 2;
  sup.breaker_open_for = Duration::sec(10);
  SensorDirector director(sim, 1, sup);
  ScriptedSensor primary(sim, "primary", 9.0);
  ScriptedSensor backup(sim, "backup", 4.0);
  primary.fail_destination = net::IpAddr(10, 0, 0, 2);
  director.register_sensor(Metric::kThroughput, &primary);
  director.register_fallback(Metric::kThroughput, &backup);
  const Path dead = make_path(1, 2);   // destination 10.0.0.2 is down
  const Path alive = make_path(1, 3);

  for (int i = 0; i < 3; ++i) {
    run_once(sim, director, dead, Metric::kThroughput);
    run_once(sim, director, alive, Metric::kThroughput);
  }
  // The dead destination tripped its own breaker...
  ASSERT_NE(director.health(&primary, dead), nullptr);
  EXPECT_EQ(director.health(&primary, dead)->state, BreakerState::kOpen);
  // ...without poisoning the sensor's standing on the healthy path: tuples
  // there still come from the primary, at full fidelity.
  ASSERT_NE(director.health(&primary, alive), nullptr);
  EXPECT_EQ(director.health(&primary, alive)->state, BreakerState::kClosed);
  auto tuples = run_once(sim, director, alive, Metric::kThroughput);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_TRUE(tuples[0].value.valid);
  EXPECT_DOUBLE_EQ(tuples[0].value.value, 9.0);
  EXPECT_EQ(tuples[0].value.quality, SampleQuality::kFresh);
}

TEST(Supervision, HalfOpenFailureReopensBreaker) {
  sim::Simulator sim;
  SupervisionConfig sup;
  sup.breaker_threshold = 1;
  sup.breaker_open_for = Duration::sec(10);
  SensorDirector director(sim, 1, sup);
  ScriptedSensor primary(sim, "primary", 9.0);
  ScriptedSensor backup(sim, "backup", 4.0);
  primary.behavior = ScriptedSensor::Behavior::kFail;
  director.register_sensor(Metric::kThroughput, &primary);
  director.register_fallback(Metric::kThroughput, &backup);
  const Path p = make_path(1, 2);

  run_once(sim, director, p, Metric::kThroughput);  // trips immediately
  EXPECT_EQ(director.health(&primary, p)->state, BreakerState::kOpen);
  sim.run_for(Duration::sec(11));
  run_once(sim, director, p, Metric::kThroughput);  // half-open probe fails
  EXPECT_EQ(director.health(&primary, p)->state, BreakerState::kOpen);
  EXPECT_EQ(director.health(&primary, p)->trips, 2u);
}

// --- exhaustion & stale re-reporting ----------------------------------------

TEST(Supervision, ExhaustionReportsFailedTupleNotSilence) {
  sim::Simulator sim;
  SensorDirector director(sim, 1);
  ScriptedSensor broken(sim, "broken", 0.0);
  broken.behavior = ScriptedSensor::Behavior::kFail;
  director.register_sensor(Metric::kThroughput, &broken);

  auto tuples = run_once(sim, director, make_path(1, 2), Metric::kThroughput);
  ASSERT_EQ(tuples.size(), 1u);  // the failure is reported, not dropped
  EXPECT_FALSE(tuples[0].value.valid);
  EXPECT_EQ(director.stats().exhausted, 1u);
  EXPECT_EQ(director.stats().measurements_failed, 1u);
}

TEST(Supervision, StaleReReportOnExhaustion) {
  sim::Simulator sim;
  SupervisionConfig sup;
  sup.report_stale_on_exhaustion = true;
  SensorDirector director(sim, 1, sup);
  ScriptedSensor sensor(sim, "s", 42.0);
  director.register_sensor(Metric::kThroughput, &sensor);
  const Path p = make_path(1, 2);

  auto first = run_once(sim, director, p, Metric::kThroughput);
  ASSERT_EQ(first.size(), 1u);
  const TimePoint good_at = first[0].value.measured_at;

  sensor.behavior = ScriptedSensor::Behavior::kFail;
  auto second = run_once(sim, director, p, Metric::kThroughput);
  ASSERT_EQ(second.size(), 1u);
  // The last known good value rides again, flagged stale with its original
  // timestamp, so the consumer knows exactly how old its basis is.
  EXPECT_TRUE(second[0].value.valid);
  EXPECT_DOUBLE_EQ(second[0].value.value, 42.0);
  EXPECT_EQ(second[0].value.quality, SampleQuality::kStale);
  EXPECT_EQ(second[0].value.measured_at.nanos(), good_at.nanos());
  EXPECT_EQ(director.stats().stale_reports, 1u);
  EXPECT_EQ(director.stats().exhausted, 1u);

  // The database recorded the *failure* — last-known is not refreshed with
  // recycled data, and senescence keeps growing.
  auto last = director.database().last_known(p, Metric::kThroughput);
  ASSERT_TRUE(last);
  EXPECT_EQ(last->value.measured_at.nanos(), good_at.nanos());
  const auto* history = director.database().history(p, Metric::kThroughput);
  ASSERT_NE(history, nullptr);
  EXPECT_FALSE(history->newest().value.valid);
  EXPECT_EQ(history->newest().value.quality, SampleQuality::kStale);
}

TEST(Supervision, StaleWithoutHistoryStillReportsFailure) {
  sim::Simulator sim;
  SupervisionConfig sup;
  sup.report_stale_on_exhaustion = true;
  SensorDirector director(sim, 1, sup);
  ScriptedSensor broken(sim, "broken", 0.0);
  broken.behavior = ScriptedSensor::Behavior::kFail;
  director.register_sensor(Metric::kThroughput, &broken);

  auto tuples = run_once(sim, director, make_path(1, 2), Metric::kThroughput);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_FALSE(tuples[0].value.valid);  // nothing to re-report yet
  EXPECT_EQ(director.stats().stale_reports, 0u);
}

// --- full pipeline: deadline -> retry -> fallback ---------------------------

TEST(Supervision, DeadlineRetryFallbackPipeline) {
  sim::Simulator sim;
  SupervisionConfig sup;
  sup.deadline = Duration::ms(500);
  sup.max_retries = 1;
  sup.backoff_base = Duration::ms(100);
  SensorDirector director(sim, 2, sup);
  ScriptedSensor hung(sim, "hung", 9.0);
  ScriptedSensor backup(sim, "backup", 4.0);
  hung.behavior = ScriptedSensor::Behavior::kHang;
  director.register_sensor(Metric::kThroughput, &hung);
  director.register_fallback(Metric::kThroughput, &backup);

  auto tuples = run_once(sim, director, make_path(1, 2), Metric::kThroughput);
  // Timeline: attempt 1 hangs, times out at 500ms; retry after ~100ms
  // backoff hangs, times out; chain falls through to the backup.
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_TRUE(tuples[0].value.valid);
  EXPECT_DOUBLE_EQ(tuples[0].value.value, 4.0);
  EXPECT_EQ(tuples[0].value.quality, SampleQuality::kFallback);
  EXPECT_EQ(hung.calls, 2);
  EXPECT_EQ(director.stats().timeouts, 2u);
  EXPECT_EQ(director.stats().retries, 1u);
  EXPECT_EQ(director.stats().fallbacks, 1u);
  EXPECT_EQ(director.sequencer().in_flight(), 0u);
}

// --- SNMP poll exhaustion through the director ------------------------------

TEST(Supervision, SnmpPollExhaustionYieldsFailedSample) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);

  ScalableMonitor::Config cfg;
  cfg.manager.timeout = Duration::ms(200);
  cfg.manager.retries = 2;
  ScalableMonitor monitor(bed.network(), bed.station(), cfg);

  // The polled host is dead: every SNMP get (and each retry) times out.
  bed.server(0).set_up(false);

  MonitorRequest request;
  request.paths.push_back(
      PathRequest{bed.path(0, 0), {Metric::kReachability}});
  std::vector<PathMetricTuple> tuples;
  monitor.director().submit(request, [&](const PathMetricTuple& t) {
    tuples.push_back(t);
  });
  sim.run();

  // Retry exhaustion surfaces as a failed sample, never a missing one.
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_FALSE(tuples[0].value.valid);
  EXPECT_GE(monitor.manager().counters().timeouts, 1u);
  EXPECT_GE(monitor.manager().counters().retries, 2u);
  EXPECT_EQ(monitor.director().stats().measurements_failed, 1u);
}

}  // namespace
}  // namespace netmon::core
