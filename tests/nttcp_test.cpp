#include <gtest/gtest.h>

#include <cmath>

#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "nttcp/nttcp.hpp"
#include "nttcp/reachability.hpp"

namespace netmon::nttcp {
namespace {

using sim::Duration;

class NttcpFixture : public ::testing::Test {
 protected:
  NttcpFixture() {
    apps::TestbedOptions options;
    options.servers = 1;
    options.clients = 1;
    // Clocks with real offsets so latency correction matters.
    options.clocks.offset_spread = Duration::ms(20);
    bed = std::make_unique<apps::Testbed>(sim, options);
  }

  NttcpResult run_probe(NttcpConfig config) {
    NttcpResult out;
    bool done = false;
    NttcpProbe probe(bed->server(0), bed->client_ip(0), config,
                     [&](const NttcpResult& r) {
                       out = r;
                       done = true;
                     });
    probe.start();
    sim.run_for(Duration::sec(60));
    EXPECT_TRUE(done);
    return out;
  }

  sim::Simulator sim;
  std::unique_ptr<apps::Testbed> bed;
};

TEST_F(NttcpFixture, UdpBurstMeasuresThroughputNearOfferedLoad) {
  NttcpConfig cfg;
  cfg.message_length = 8192;
  cfg.inter_send = Duration::ms(30);
  cfg.message_count = 64;
  const auto result = run_probe(cfg);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.messages_sent, 64u);
  EXPECT_EQ(result.messages_received, 64u);
  EXPECT_DOUBLE_EQ(result.loss_fraction, 0.0);
  // Offered application rate: 8192*8/0.030 = 2.18 Mb/s.
  EXPECT_NEAR(result.throughput_bps, 8192.0 * 8.0 / 0.030, 0.05e6);
}

TEST_F(NttcpFixture, LatencyWithoutCorrectionAbsorbsClockOffset) {
  NttcpConfig cfg;
  cfg.message_count = 16;
  cfg.in_band_offset = false;
  const auto result = run_probe(cfg);
  ASSERT_TRUE(result.completed);
  // With up to +-20ms clock offsets and a ~1ms true latency, uncorrected
  // one-way latency is dominated by the offset (can even be negative).
  const double measured = result.latency.median();
  const double true_latency_bound = 0.005;
  EXPECT_GT(std::abs(measured), true_latency_bound);
}

TEST_F(NttcpFixture, InBandOffsetExchangeRecoversTrueLatency) {
  NttcpConfig cfg;
  cfg.message_count = 16;
  cfg.in_band_offset = true;
  const auto result = run_probe(cfg);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.offset_bytes_on_wire, 0u);
  const double measured = result.latency.median();
  // True one-way latency on the switched 100 Mb/s path is under 2 ms.
  EXPECT_GT(measured, 0.0);
  EXPECT_LT(measured, 0.002);
}

TEST_F(NttcpFixture, InBandOffsetIsMoreIntrusive) {
  NttcpConfig plain;
  plain.message_count = 8;
  const auto without = run_probe(plain);
  NttcpConfig with_offset = plain;
  with_offset.in_band_offset = true;
  const auto with = run_probe(with_offset);
  EXPECT_GT(with.probe_bytes_on_wire, without.probe_bytes_on_wire);
}

TEST_F(NttcpFixture, UnreachableSinkReportsIncomplete) {
  bed->client(0).set_up(false);
  NttcpConfig cfg;
  cfg.message_count = 4;
  cfg.result_timeout = Duration::ms(500);
  const auto result = run_probe(cfg);
  EXPECT_FALSE(result.completed);
}

TEST_F(NttcpFixture, TcpModeDeliversAllBytes) {
  NttcpConfig cfg;
  cfg.protocol = Protocol::kTcp;
  cfg.message_length = 8192;
  cfg.message_count = 32;
  const auto result = run_probe(cfg);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.bytes_received, 8192u * 32u);
  EXPECT_GT(result.throughput_bps, 1e6);
}

TEST_F(NttcpFixture, PeakLoadFormulaMatchesPaper) {
  // Paper §5.1.3: one stream at L=8192,P=30ms is ~2.18 Mb/s application
  // rate; our wire-accurate figure includes UDP/IP/frame overhead.
  NttcpConfig cfg;
  cfg.message_length = 8192;
  cfg.inter_send = Duration::ms(30);
  const double app_rate = 8192.0 * 8.0 / 0.030;
  const double wire_rate = NttcpProbe::peak_load_bps(cfg);
  EXPECT_NEAR(app_rate, 2.18e6, 0.01e6);
  EXPECT_GT(wire_rate, app_rate);
  EXPECT_LT(wire_rate, app_rate * 1.02);
}

TEST(ClockOffset, EstimatesOffsetBetweenSkewedHosts) {
  sim::Simulator sim;
  net::Network network(sim, util::Rng(5));
  auto& a = network.add_host("a", clk::HostClock(sim, Duration::ms(0)));
  auto& b = network.add_host("b", clk::HostClock(sim, Duration::ms(25)));
  network.connect(a, net::IpAddr(10, 0, 0, 1), b, net::IpAddr(10, 0, 0, 2),
                  24, 10e6, Duration::us(100));
  network.auto_route();
  OffsetResponder responder(b, 5555);

  ClockOffsetResult result;
  ClockOffsetEstimator estimator(a, net::IpAddr(10, 0, 0, 2), 5555,
                                 ClockOffsetConfig{},
                                 [&](const ClockOffsetResult& r) { result = r; });
  estimator.start();
  sim.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.replies, 16);
  // b is 25 ms ahead of a.
  EXPECT_NEAR(static_cast<double>(result.offset.nanos()), 25e6, 2e5);
  EXPECT_GT(result.bytes_on_wire, 0u);
}

TEST(ClockOffset, TimesOutWithoutResponder) {
  sim::Simulator sim;
  net::Network network(sim, util::Rng(5));
  auto& a = network.add_host("a");
  auto& b = network.add_host("b");
  network.connect(a, net::IpAddr(10, 0, 0, 1), b, net::IpAddr(10, 0, 0, 2),
                  24, 10e6);
  network.auto_route();
  ClockOffsetResult result;
  result.ok = true;
  ClockOffsetEstimator estimator(a, net::IpAddr(10, 0, 0, 2), 5555,
                                 ClockOffsetConfig{},
                                 [&](const ClockOffsetResult& r) { result = r; });
  estimator.start();
  sim.run();
  EXPECT_FALSE(result.ok);
}

class ReachabilityFixture : public ::testing::Test {
 protected:
  ReachabilityFixture() {
    apps::TestbedOptions options;
    options.servers = 1;
    options.clients = 1;
    bed = std::make_unique<apps::Testbed>(sim, options);
  }
  sim::Simulator sim;
  std::unique_ptr<apps::Testbed> bed;
};

TEST_F(ReachabilityFixture, ReachableHostAnswersFirstAttempt) {
  ReachabilityResult result;
  ReachabilityProbe probe(bed->server(0), bed->client_ip(0),
                          [&](const ReachabilityResult& r) { result = r; });
  probe.start();
  sim.run();
  EXPECT_TRUE(result.reachable);
  EXPECT_EQ(result.attempts_used, 1);
  EXPECT_GT(result.round_trip.nanos(), 0);
}

TEST_F(ReachabilityFixture, DownHostExhaustsAttempts) {
  bed->client(0).set_up(false);
  ReachabilityResult result;
  result.reachable = true;
  ReachabilityProbe probe(bed->server(0), bed->client_ip(0),
                          [&](const ReachabilityResult& r) { result = r; });
  probe.start();
  sim.run();
  EXPECT_FALSE(result.reachable);
  EXPECT_EQ(result.attempts_used, 3);
}

TEST_F(ReachabilityFixture, RecoversOnRetryAfterTransientOutage) {
  // Host comes back up between attempts: probe succeeds on a later try.
  bed->client(0).set_up(false);
  sim.schedule_in(Duration::ms(700), [&] { bed->client(0).set_up(true); });
  ReachabilityResult result;
  ReachabilityProbe probe(bed->server(0), bed->client_ip(0),
                          [&](const ReachabilityResult& r) { result = r; });
  probe.start();
  sim.run();
  EXPECT_TRUE(result.reachable);
  EXPECT_GT(result.attempts_used, 1);
}

}  // namespace
}  // namespace netmon::nttcp
