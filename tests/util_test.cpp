#include <gtest/gtest.h>

#include <cmath>

#include "util/backoff.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace netmon::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(Accumulator, MeanMinMax) {
  Accumulator acc;
  for (double x : {4.0, 1.0, 7.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 12.0);
}

TEST(Accumulator, VarianceMatchesTextbookFormula) {
  Accumulator acc;
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  double mean = 0.0;
  for (double x : xs) {
    acc.add(x);
    mean += x;
  }
  mean /= 8.0;
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_NEAR(acc.variance(), m2 / 7.0, 1e-12);
}

TEST(Accumulator, MergeEqualsCombinedStream) {
  Accumulator a, b, all;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-5, 5);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeIntoEmpty) {
  Accumulator a, b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(Accumulator, CvZeroWhenMeanZero) {
  Accumulator acc;
  acc.add(-1.0);
  acc.add(1.0);
  EXPECT_DOUBLE_EQ(acc.cv(), 0.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 20.0);
}

TEST(SampleSet, QuantileOutOfRangeThrows) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(1.5), std::out_of_range);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleSet, AddAfterQuantileStillSorted) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, BucketsAccumulate) {
  Histogram h(1.0);
  h.add(0.5);
  h.add(0.7);
  h.add(2.1, 3.0);
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_DOUBLE_EQ(h.buckets()[0], 2.0);
  EXPECT_DOUBLE_EQ(h.buckets()[1], 0.0);
  EXPECT_DOUBLE_EQ(h.buckets()[2], 3.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
}

TEST(Histogram, NegativeKeysIgnored) {
  Histogram h(1.0);
  h.add(-0.1);
  EXPECT_TRUE(h.buckets().empty());
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
}

TEST(RingBuffer, FillsThenOverwritesOldest) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.oldest(), 1);
  rb.push(4);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.oldest(), 2);
  EXPECT_EQ(rb.newest(), 4);
  EXPECT_EQ(rb[0], 2);
  EXPECT_EQ(rb[1], 3);
  EXPECT_EQ(rb[2], 4);
}

TEST(RingBuffer, LongSequenceKeepsLastK) {
  RingBuffer<int> rb(5);
  for (int i = 0; i < 100; ++i) rb.push(i);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(rb[i], 95 + static_cast<int>(i));
}

TEST(RingBuffer, ErrorsOnMisuse) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
  RingBuffer<int> rb(2);
  EXPECT_THROW(rb.newest(), std::out_of_range);
  rb.push(1);
  EXPECT_THROW(rb[1], std::out_of_range);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.oldest(), 9);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(123), b(123);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, BernoulliEdges) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, UniformIntInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

// Shared by sensor supervision retries and federation reconnects: the exact
// delay sequence is pinned so a refactor cannot silently change every retry
// schedule in the simulator (determinism tests downstream depend on it).
TEST(Backoff, PinnedJitteredSequence) {
  const sim::Duration base = sim::Duration::ms(100);
  const sim::Duration cap = sim::Duration::sec(5);
  const std::int64_t expected[] = {
      105175781,   247412109,  411914062,  948242187,
      1833593750, 3282812500, 5554199218, 6033935546};
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const auto d = jittered_backoff(base, cap, attempt,
                                    0xFEEDu ^ static_cast<std::uint64_t>(attempt));
    EXPECT_EQ(d.nanos(), expected[attempt - 1]) << "attempt " << attempt;
  }
}

TEST(Backoff, DoublesToCapAndJitterStaysBounded) {
  const sim::Duration base = sim::Duration::ms(100);
  const sim::Duration cap = sim::Duration::sec(5);
  for (int attempt = 1; attempt <= 20; ++attempt) {
    for (std::uint64_t key = 0; key < 50; ++key) {
      const std::int64_t undithered =
          std::min(cap.nanos(), base.nanos() << std::min(attempt - 1, 10));
      const auto d = jittered_backoff(base, cap, attempt, key);
      EXPECT_GE(d.nanos(), undithered);
      // Jitter adds strictly less than 25% of the undithered delay.
      EXPECT_LT(d.nanos(), undithered + undithered / 4);
    }
  }
  // Same (attempt, key) is reproducible; different keys de-synchronize.
  EXPECT_EQ(jittered_backoff(base, cap, 3, 7).nanos(),
            jittered_backoff(base, cap, 3, 7).nanos());
  EXPECT_NE(jittered_backoff(base, cap, 3, 7).nanos(),
            jittered_backoff(base, cap, 3, 8).nanos());
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt_rate_mbps(2.18e6), "2.18 Mb/s");
  EXPECT_EQ(TextTable::fmt_percent(0.125), "12.5%");
  EXPECT_EQ(TextTable::fmt_bytes(512), "512 B");
}

}  // namespace
}  // namespace netmon::util
