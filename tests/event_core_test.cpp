// Tests for the allocation-free event core: the 4-ary event heap, the
// hierarchical timer wheel, the SmallFunction callback wrapper, handle
// cancellation in every state, and — most importantly — the determinism
// regression: the golden hash below was captured from the pre-overhaul
// std::priority_queue implementation, so any reordering of live events at
// equal timestamps (or any change to seq assignment) fails this file.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "sim/event_heap.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"
#include "util/function.hpp"

namespace netmon::sim {
namespace {

// ---------------------------------------------------------------------------
// Determinism golden trace

// Captured from the seed implementation (std::priority_queue event queue)
// before the event-core overhaul; the workload exercises periodic ties,
// one-shot/periodic interleaving at equal timestamps, nested scheduling,
// cancellation mid-run, and self-cancellation from inside a callback.
constexpr std::uint64_t kGoldenTraceHash = 0x1648e4f5d335438full;

std::uint64_t trace_hash() {
  sim::Simulator s;
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h, &s](std::uint64_t marker) {
    h ^= marker;
    h *= 1099511628211ull;
    h ^= static_cast<std::uint64_t>(s.now().nanos());
    h *= 1099511628211ull;
  };

  // Periodic probes at RTDS-like cadences, including exact ties at 30/60 ms.
  auto p30 = s.schedule_periodic(sim::Duration::ms(30), [&] { mix(1); });
  auto p10 = s.schedule_periodic(sim::Duration::ms(10), [&] { mix(2); });
  auto p15 = s.schedule_periodic(sim::Duration::ms(15), [&] { mix(3); });

  // One-shot events, several tying with periodic firings (30, 45, 60 ms...).
  for (int i = 0; i < 40; ++i) {
    s.schedule_in(sim::Duration::ms(3 * ((i * 7) % 31)), [&mix, i] {
      mix(100 + static_cast<std::uint64_t>(i));
    });
  }

  // Nested scheduling from inside a callback, plus cancellation of a pending
  // one-shot and of a periodic chain mid-run.
  sim::EventHandle doomed =
      s.schedule_in(sim::Duration::ms(55), [&] { mix(999); });
  s.schedule_in(sim::Duration::ms(42), [&] {
    mix(4);
    doomed.cancel();
    s.schedule_in(sim::Duration::ms(1), [&] { mix(5); });
    s.schedule_at(s.now(), [&] { mix(6); });
  });
  s.schedule_in(sim::Duration::ms(65), [&] {
    mix(7);
    p30.cancel();
  });
  // A periodic that cancels itself from inside its own callback.
  auto self_cancel = std::make_shared<sim::EventHandle>();
  *self_cancel = s.schedule_periodic(sim::Duration::ms(7), [&, self_cancel] {
    mix(9);
    if (s.now().nanos() >= sim::Duration::ms(21).nanos()) {
      self_cancel->cancel();
    }
  });

  s.run_until(sim::TimePoint::from_nanos(0) + sim::Duration::ms(80));
  // Stop the unbounded chains, then drain the remaining one-shots.
  p10.cancel();
  p15.cancel();
  s.run();
  mix(static_cast<std::uint64_t>(s.events_executed()));
  return h;
}

TEST(EventCoreDeterminism, GoldenTraceMatchesSeedImplementation) {
  EXPECT_EQ(trace_hash(), kGoldenTraceHash);
}

TEST(EventCoreDeterminism, RepeatedRunsAreIdentical) {
  const std::uint64_t first = trace_hash();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(trace_hash(), first);
}

// ---------------------------------------------------------------------------
// EventHandle cancellation in every state

TEST(EventHandleCancel, PendingOneShotNeverFires) {
  Simulator s;
  int fired = 0;
  EventHandle h = s.schedule_in(Duration::ms(5), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(EventHandleCancel, FiredOneShotIsStale) {
  Simulator s;
  int fired = 0;
  EventHandle h = s.schedule_in(Duration::ms(5), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());  // slot generation bumped on firing
  h.cancel();                 // stale: must be a harmless no-op
  h.cancel();
  // The slot may be reused by a new event; the stale handle must not be
  // able to cancel the newcomer.
  int second = 0;
  EventHandle h2 = s.schedule_in(Duration::ms(1), [&] { ++second; });
  h.cancel();
  EXPECT_TRUE(h2.pending());
  s.run();
  EXPECT_EQ(second, 1);
}

TEST(EventHandleCancel, PeriodicStopsReArming) {
  Simulator s;
  int fired = 0;
  EventHandle h = s.schedule_periodic(Duration::ms(10), [&] { ++fired; });
  s.run_until(TimePoint::from_nanos(0) + Duration::ms(35));
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(s.empty());  // cancellation unlinks from the wheel immediately
  s.run_until(TimePoint::from_nanos(0) + Duration::ms(100));
  EXPECT_EQ(fired, 3);
}

TEST(EventHandleCancel, FromInsideOwnCallback) {
  Simulator s;
  int fired = 0;
  auto h = std::make_shared<EventHandle>();
  *h = s.schedule_periodic(Duration::ms(10), [&, h] {
    if (++fired == 2) h->cancel();  // cancel while the callback is executing
  });
  s.run_until(TimePoint::from_nanos(0) + Duration::ms(100));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(h->pending());
  EXPECT_TRUE(s.empty());
}

TEST(EventHandleCancel, AnotherEventCancelsPeriodicBetweenFirings) {
  Simulator s;
  int fired = 0;
  EventHandle p = s.schedule_periodic(Duration::ms(10), [&] { ++fired; });
  s.schedule_in(Duration::ms(25), [&] { p.cancel(); });
  s.run();
  EXPECT_EQ(fired, 2);  // 10ms, 20ms; the 30ms firing is unlinked
}

TEST(EventHandleCancel, HandleOutlivesSimulator) {
  EventHandle h;
  {
    Simulator s;
    h = s.schedule_in(Duration::ms(5), [] {});
  }
  h.cancel();  // core kept alive by the handle's shared_ptr; no UAF
  EXPECT_TRUE(h.valid());
}

TEST(SimulatorStop, BeforeRunMakesNextRunReturnImmediately) {
  Simulator s;
  int fired = 0;
  s.schedule_in(Duration::ms(1), [&] { ++fired; });
  s.stop();
  s.run();  // consumes the stop request, fires nothing
  EXPECT_EQ(fired, 0);
  s.run();  // request was reset on exit: this run proceeds normally
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorStop, RunUntilConsumesStopAndKeepsClock) {
  Simulator s;
  s.schedule_in(Duration::ms(2), [&] { s.stop(); });
  s.run_until(TimePoint::from_nanos(0) + Duration::ms(10));
  // Stopped mid-window: the clock stays at the stopping event.
  EXPECT_EQ(s.now().nanos(), Duration::ms(2).nanos());
  s.run_until(TimePoint::from_nanos(0) + Duration::ms(10));
  EXPECT_EQ(s.now().nanos(), Duration::ms(10).nanos());
}

// ---------------------------------------------------------------------------
// EventHeap

TEST(EventHeap, PopsInSortedOrder) {
  struct Less {
    bool operator()(int a, int b) const { return a < b; }
  };
  EventHeap<int, Less> heap;
  std::mt19937 rng(7);
  std::vector<int> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<int>(rng() % 10000));
  }
  for (int v : values) heap.push(v);
  EXPECT_EQ(heap.size(), values.size());
  int prev = -1;
  while (!heap.empty()) {
    const int v = heap.pop();
    EXPECT_LE(prev, v);
    prev = v;
  }
}

TEST(EventHeap, EqualKeysPopInInsertionOrder) {
  struct Node {
    int key;
    int seq;
  };
  struct Less {
    bool operator()(const Node& a, const Node& b) const {
      if (a.key != b.key) return a.key < b.key;
      return a.seq < b.seq;
    }
  };
  EventHeap<Node, Less> heap;
  for (int i = 0; i < 100; ++i) heap.push(Node{i % 5, i});
  int prev_key = -1, prev_seq = -1;
  while (!heap.empty()) {
    const Node n = heap.pop();
    if (n.key == prev_key) EXPECT_LT(prev_seq, n.seq);
    EXPECT_LE(prev_key, n.key);
    prev_key = n.key;
    prev_seq = n.seq;
  }
}

// ---------------------------------------------------------------------------
// TimerWheel

TEST(TimerWheel, SingleTimerExpiresAtExactBoundary) {
  TimerWheel w;
  w.ensure_capacity(4);
  ASSERT_TRUE(w.insert(0, 10'000));
  EXPECT_EQ(w.next_boundary(), 10'000);
  std::vector<std::uint32_t> due;
  EXPECT_EQ(w.expire_earliest_until(9'999, due), TimerWheel::kNever);
  EXPECT_TRUE(due.empty());
  EXPECT_EQ(w.expire_earliest_until(10'000, due), 10'000);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 0u);
  EXPECT_TRUE(w.empty());
}

TEST(TimerWheel, RejectsNonFutureExpiry) {
  TimerWheel w;
  w.ensure_capacity(1);
  w.advance(500);
  EXPECT_FALSE(w.insert(0, 500));  // == cursor: caller dispatches directly
  EXPECT_FALSE(w.insert(0, 100));
  EXPECT_TRUE(w.insert(0, 501));
}

TEST(TimerWheel, ManyTimersExpireInGlobalOrder) {
  TimerWheel w;
  constexpr std::uint32_t kN = 500;
  w.ensure_capacity(kN);
  std::mt19937_64 rng(42);
  std::vector<std::int64_t> expiry(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    // Spread across several wheel levels, with duplicates.
    expiry[i] = 1 + static_cast<std::int64_t>(rng() % 3'000'000);
    ASSERT_TRUE(w.insert(i, expiry[i]));
  }
  EXPECT_EQ(w.size(), kN);
  std::int64_t prev = 0;
  std::size_t popped = 0;
  std::vector<std::uint32_t> due;
  for (;;) {
    due.clear();
    const std::int64_t b =
        w.expire_earliest_until(TimerWheel::kNever - 1, due);
    if (b == TimerWheel::kNever) break;
    if (due.empty()) continue;  // pure cascade step
    EXPECT_GT(b, prev);
    prev = b;
    for (std::uint32_t id : due) {
      EXPECT_EQ(expiry[id], b);  // due only at the exact boundary
      ++popped;
    }
  }
  EXPECT_EQ(popped, kN);
  EXPECT_TRUE(w.empty());
}

TEST(TimerWheel, RemoveUnlinksBothSoloAndBucketEntries) {
  TimerWheel w;
  w.ensure_capacity(3);
  ASSERT_TRUE(w.insert(0, 1'000));  // solo slot
  w.remove(0);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.next_boundary(), TimerWheel::kNever);

  ASSERT_TRUE(w.insert(0, 1'000));
  ASSERT_TRUE(w.insert(1, 2'000));  // demotes id 0 into the buckets
  ASSERT_TRUE(w.insert(2, 3'000));
  w.remove(1);
  w.remove(1);  // double remove is a no-op
  EXPECT_EQ(w.size(), 2u);
  std::vector<std::uint32_t> due;
  std::size_t seen = 0;
  for (;;) {
    due.clear();
    if (w.expire_earliest_until(TimerWheel::kNever - 1, due) ==
        TimerWheel::kNever) {
      break;
    }
    for (std::uint32_t id : due) {
      EXPECT_NE(id, 1u);
      ++seen;
    }
  }
  EXPECT_EQ(seen, 2u);
}

// ---------------------------------------------------------------------------
// SmallFunction

TEST(SmallFunction, InlineCaptureInvokes) {
  int x = 0;
  util::SmallFunction<void(), 48> f([&x] { ++x; });
  f();
  f();
  EXPECT_EQ(x, 2);
  EXPECT_TRUE(static_cast<bool>(f));
}

TEST(SmallFunction, MoveTransfersOwnership) {
  int calls = 0;
  util::SmallFunction<int(int), 48> f([&calls](int v) {
    ++calls;
    return v * 2;
  });
  auto g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(g(21), 42);
  EXPECT_EQ(calls, 1);
  EXPECT_THROW(f(3), std::bad_function_call);
}

TEST(SmallFunction, LargeCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes: exceeds the inline buffer
  big[0] = 7;
  big[15] = 35;
  util::SmallFunction<std::uint64_t(), 48> f(
      [big] { return big[0] + big[15]; });
  auto g = std::move(f);
  EXPECT_EQ(g(), 42u);
}

TEST(SmallFunction, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> observer = token;
  {
    util::SmallFunction<void(), 48> f([token] {});
    token.reset();
    EXPECT_FALSE(observer.expired());
    util::SmallFunction<void(), 48> g = std::move(f);
    EXPECT_FALSE(observer.expired());
  }
  EXPECT_TRUE(observer.expired());
}

// ---------------------------------------------------------------------------
// Steady-state periodic dispatch really is a fixed point (no queue growth).

TEST(Simulator, PeriodicSteadyStateKeepsPendingCountFlat) {
  Simulator s;
  std::uint64_t fired = 0;
  for (int i = 0; i < 32; ++i) {
    s.schedule_periodic(Duration::us(10 + i), [&] { ++fired; });
  }
  s.run_until(TimePoint::from_nanos(0) + Duration::ms(1));
  const std::size_t pending = s.pending_events();
  s.run_until(TimePoint::from_nanos(0) + Duration::ms(10));
  EXPECT_EQ(s.pending_events(), pending);  // re-arming, never accumulating
  EXPECT_GT(fired, 10'000u);
}

}  // namespace
}  // namespace netmon::sim
