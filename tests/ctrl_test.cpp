// Unit tests for the closed-loop control plane (DESIGN.md §12): the
// ActuationLog ring, every ControlPolicy gate (cooldown, direction-change
// hold, breaker half-open cycle, deadline rollback, pending block), the
// routing-table standby swap, the concrete actuators, the substrate hooks
// they drive (LaneScheduler::reprioritize, SensorDirector retuning), and
// the default-OFF contract: a disabled plane observes nothing and
// schedules nothing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/rtds.hpp"
#include "apps/testbed.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "core/lane_scheduler.hpp"
#include "ctrl/actuators.hpp"
#include "ctrl/control_plane.hpp"
#include "ctrl/control_policy.hpp"
#include "manager/resource_manager.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace netmon::ctrl {
namespace {

using core::ProbeClass;
using sim::Duration;

// -------------------------------------------------------------------------
// ActuationLog

TEST(ActuationLog, RingBoundsMemoryButCountsEverything) {
  ActuationLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.append(i * 100, "rule", "target" + std::to_string(i), "detail",
               ActuationOutcome::kApplied);
  }
  EXPECT_EQ(log.emitted(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto records = log.records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest retained first, seq monotone across the drop boundary.
  EXPECT_EQ(records.front().seq, 6u);
  EXPECT_EQ(records.back().seq, 9u);
  EXPECT_EQ(records.back().target, "target9");
}

TEST(ActuationLog, SerializationsAreDeterministicBytes) {
  ActuationLog log(8);
  log.append(1500, "route-failover", "a@10.0.0.1 -> b@10.0.0.2",
             "standby reroute", ActuationOutcome::kApplied);
  log.append(2500, "route-failover", "a@10.0.0.1 -> b@10.0.0.2",
             "standby reroute", ActuationOutcome::kVerified);
  EXPECT_EQ(log.export_text(),
            "0 t=1500 [route-failover] a@10.0.0.1 -> b@10.0.0.2 :: "
            "standby reroute -> applied\n"
            "1 t=2500 [route-failover] a@10.0.0.1 -> b@10.0.0.2 :: "
            "standby reroute -> verified\n");
  const std::string json = log.export_json();
  EXPECT_NE(json.find("\"seq\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\": \"verified\""), std::string::npos);
  // Same records, same bytes.
  EXPECT_EQ(json, ActuationLog::to_json(log.records()));
}

// -------------------------------------------------------------------------
// ControlPolicy gates

ControlPolicy::Action ok_action(int* applies = nullptr,
                                int* rollbacks = nullptr) {
  ControlPolicy::Action a;
  a.detail = "test";
  a.apply = [applies] {
    if (applies != nullptr) ++*applies;
    return true;
  };
  a.rollback = [rollbacks] {
    if (rollbacks != nullptr) ++*rollbacks;
  };
  return a;
}

ControlPolicy::Action failing_action() {
  ControlPolicy::Action a;
  a.detail = "test";
  a.apply = [] { return false; };
  return a;
}

TEST(ControlPolicy, CooldownSpacesSameDirectionRefires) {
  sim::Simulator sim;
  ControlPolicy policy(sim, PolicyConfig{});
  const auto rule = policy.add_rule("r", Duration::sec(1));

  auto first = policy.fire(rule, 7, "t", ok_action());
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(policy.verified(*first));

  // Immediate refire: same direction, no hold — but still cooling down.
  EXPECT_FALSE(policy.fire(rule, 7, "t", ok_action()).has_value());
  EXPECT_EQ(policy.stats().blocked_cooldown, 1u);

  // A different target is an independent pair.
  EXPECT_TRUE(policy.fire(rule, 8, "t2", ok_action()).has_value());

  sim.run_for(Duration::sec(2));
  EXPECT_TRUE(policy.fire(rule, 7, "t", ok_action()).has_value());
}

TEST(ControlPolicy, HoldBlocksOnlyDirectionChanges) {
  sim::Simulator sim;
  PolicyConfig cfg;
  cfg.hold = Duration::sec(8);
  ControlPolicy policy(sim, cfg);
  const auto rule = policy.add_rule("r", Duration::ms(100));

  auto id = policy.fire(rule, 1, "t", ok_action(),
                        ControlPolicy::Direction::kForward);
  ASSERT_TRUE(id.has_value());
  policy.verified(*id);
  sim.run_for(Duration::sec(1));  // past cooldown, inside hold

  // The reverse direction is the ping-pong the hold exists to damp.
  EXPECT_TRUE(policy.held(rule, 1, ControlPolicy::Direction::kReverse));
  EXPECT_FALSE(policy.fire(rule, 1, "t", ok_action(),
                           ControlPolicy::Direction::kReverse)
                   .has_value());
  EXPECT_EQ(policy.stats().blocked_hold, 1u);

  // Escalation in the same direction is not oscillation.
  EXPECT_FALSE(policy.held(rule, 1, ControlPolicy::Direction::kForward));
  auto again = policy.fire(rule, 1, "t", ok_action(),
                           ControlPolicy::Direction::kForward);
  ASSERT_TRUE(again.has_value());
  policy.verified(*again);

  // After the hold expires the reverse goes through.
  sim.run_for(Duration::sec(9));
  EXPECT_TRUE(policy.fire(rule, 1, "t", ok_action(),
                          ControlPolicy::Direction::kReverse)
                  .has_value());
}

TEST(ControlPolicy, PendingActuationBlocksRefire) {
  sim::Simulator sim;
  ControlPolicy policy(sim, PolicyConfig{});
  const auto rule = policy.add_rule("r", Duration::ms(1));

  auto id = policy.fire(rule, 1, "t", ok_action());
  ASSERT_TRUE(id.has_value());
  sim.run_for(Duration::ms(10));  // past cooldown; still unverified
  EXPECT_FALSE(policy.fire(rule, 1, "t", ok_action()).has_value());
  EXPECT_EQ(policy.stats().blocked_pending, 1u);
  policy.verified(*id);
}

TEST(ControlPolicy, DeadlineExpiryRollsBackAndCountsFailed) {
  sim::Simulator sim;
  PolicyConfig cfg;
  cfg.action_deadline = Duration::sec(3);
  ControlPolicy policy(sim, cfg);
  const auto rule = policy.add_rule("r", Duration::ms(1));

  int applies = 0;
  int rollbacks = 0;
  auto id = policy.fire(rule, 1, "t", ok_action(&applies, &rollbacks));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(applies, 1);

  sim.run_for(Duration::sec(4));
  EXPECT_EQ(rollbacks, 1);
  EXPECT_EQ(policy.stats().rolled_back, 1u);
  EXPECT_EQ(policy.pending(), 0u);
  // The id is spent; late verification must not resurrect it.
  EXPECT_FALSE(policy.verified(*id));

  const auto records = policy.log().records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].outcome, ActuationOutcome::kApplied);
  EXPECT_EQ(records[1].outcome, ActuationOutcome::kRolledBack);
}

TEST(ControlPolicy, BreakerOpensDegradesToReportOnlyAndHalfOpens) {
  sim::Simulator sim;
  PolicyConfig cfg;
  cfg.breaker_threshold = 2;
  cfg.breaker_open_for = Duration::sec(30);
  ControlPolicy policy(sim, cfg);
  const auto rule = policy.add_rule("r", Duration::ms(1));

  // Two consecutive apply() failures open the (rule, target) breaker.
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(policy.fire(rule, 1, "t", failing_action()).has_value());
    sim.run_for(Duration::ms(5));
  }
  EXPECT_EQ(policy.stats().failed, 2u);
  EXPECT_EQ(policy.stats().breaker_trips, 1u);
  EXPECT_TRUE(policy.breaker_open(rule, 1));
  EXPECT_EQ(policy.report_only_pairs(), 1u);

  // Open: the condition is observed but nothing acts.
  EXPECT_FALSE(policy.fire(rule, 1, "t", ok_action()).has_value());
  EXPECT_EQ(policy.stats().blocked_breaker, 1u);

  // Half-open probe that fails re-opens after a single failure.
  sim.run_for(Duration::sec(31));
  EXPECT_FALSE(policy.breaker_open(rule, 1));
  EXPECT_FALSE(policy.fire(rule, 1, "t", failing_action()).has_value());
  EXPECT_EQ(policy.stats().breaker_trips, 2u);
  EXPECT_TRUE(policy.breaker_open(rule, 1));

  // Half-open probe that succeeds closes the breaker for good.
  sim.run_for(Duration::sec(31));
  auto id = policy.fire(rule, 1, "t", ok_action());
  ASSERT_TRUE(id.has_value());
  policy.verified(*id);
  EXPECT_FALSE(policy.breaker_open(rule, 1));
  EXPECT_EQ(policy.report_only_pairs(), 0u);
}

TEST(ControlPolicy, ZeroDeadlineSupportsSelfVerifiedActions) {
  sim::Simulator sim;
  PolicyConfig cfg;
  cfg.action_deadline = Duration::ns(0);
  ControlPolicy policy(sim, cfg);
  const auto rule = policy.add_rule("r", Duration::ms(1));

  auto id = policy.fire(rule, 1, "t", ok_action());
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(policy.verified(*id));
  sim.run_for(Duration::sec(10));
  EXPECT_EQ(policy.stats().rolled_back, 0u);
  EXPECT_EQ(policy.stats().verified, 1u);
}

// -------------------------------------------------------------------------
// RoutingTable standby entries

TEST(RoutingStandby, SwapIsAtomicAndInvolutive) {
  net::RoutingTable table;
  const net::IpAddr peer(10, 0, 2, 1);
  const net::IpAddr primary_gw(10, 0, 1, 254);
  const net::IpAddr standby_gw(10, 0, 1, 253);
  table.add(net::Prefix(net::IpAddr{}, 0), primary_gw, nullptr);

  EXPECT_FALSE(table.has_standby(net::Prefix(peer, 32)));
  EXPECT_FALSE(table.swap_standby(net::Prefix(peer, 32)));

  table.add_standby(net::Prefix(peer, 32), standby_gw, nullptr);
  EXPECT_TRUE(table.has_standby(net::Prefix(peer, 32)));
  // Invisible to lookup until swapped: the default route still answers.
  ASSERT_TRUE(table.lookup(peer).has_value());
  EXPECT_EQ(table.lookup(peer)->gateway, primary_gw);

  // Swap in: the /32 longest-prefix-overrides the default route.
  ASSERT_TRUE(table.swap_standby(net::Prefix(peer, 32)));
  EXPECT_EQ(table.lookup(peer)->gateway, standby_gw);
  EXPECT_FALSE(table.has_standby(net::Prefix(peer, 32)));

  // Swap back: the involution the failover rollback relies on.
  ASSERT_TRUE(table.swap_standby(net::Prefix(peer, 32)));
  EXPECT_EQ(table.lookup(peer)->gateway, primary_gw);
  EXPECT_TRUE(table.has_standby(net::Prefix(peer, 32)));
}

// -------------------------------------------------------------------------
// RouteFailoverActuator on a dual-router topology

struct DualRouterNet {
  explicit DualRouterNet(sim::Simulator& sim)
      : network(sim, util::Rng(7)) {
    net::Switch& sws = network.add_switch("sws");
    net::Switch& swc = network.add_switch("swc");
    ra = &network.add_router("ra");
    rb = &network.add_router("rb");
    network.attach(*ra, sws, net::IpAddr(10, 0, 1, 254), 24, 100e6);
    network.attach(*ra, swc, net::IpAddr(10, 0, 2, 254), 24, 100e6);
    network.attach(*rb, sws, net::IpAddr(10, 0, 1, 253), 24, 100e6);
    network.attach(*rb, swc, net::IpAddr(10, 0, 2, 253), 24, 100e6);
    server = &network.add_host("server");
    client = &network.add_host("client");
    network.attach(*server, sws, net::IpAddr(10, 0, 1, 1), 24, 100e6);
    network.attach(*client, swc, net::IpAddr(10, 0, 2, 1), 24, 100e6);
    network.auto_route();
  }

  // Standby /32 routes through rb at both endpoints of server<->client.
  void provision_standby() {
    server->routing().add_standby(
        net::Prefix(client->primary_ip(), 32), net::IpAddr(10, 0, 1, 253),
        server->nics().front().get());
    client->routing().add_standby(
        net::Prefix(server->primary_ip(), 32), net::IpAddr(10, 0, 2, 253),
        client->nics().front().get());
  }

  core::Path path() const {
    return core::Path(
        core::ProcessEndpoint{"s", server->primary_ip(), 5000},
        core::ProcessEndpoint{"c", client->primary_ip(), 5000});
  }

  net::Network network;
  net::Host* ra = nullptr;
  net::Host* rb = nullptr;
  net::Host* server = nullptr;
  net::Host* client = nullptr;
};

TEST(RouteFailoverActuator, SwapsBothDirectionsAndRollsBack) {
  sim::Simulator sim;
  DualRouterNet net(sim);
  RouteFailoverActuator actuator(net.network);

  // Without standbys the path is not failover-capable; apply refuses.
  EXPECT_FALSE(actuator.available(net.path()));
  EXPECT_FALSE(actuator.apply(net.path()));
  EXPECT_EQ(actuator.swaps(), 0u);

  net.provision_standby();
  ASSERT_TRUE(actuator.available(net.path()));
  ASSERT_TRUE(actuator.apply(net.path()));
  EXPECT_EQ(actuator.swaps(), 1u);
  // Both directions now route via rb.
  EXPECT_EQ(net.server->routing().lookup(net.client->primary_ip())->gateway,
            net::IpAddr(10, 0, 1, 253));
  EXPECT_EQ(net.client->routing().lookup(net.server->primary_ip())->gateway,
            net::IpAddr(10, 0, 2, 253));

  actuator.rollback(net.path());
  EXPECT_EQ(net.server->routing().lookup(net.client->primary_ip())->gateway,
            net::IpAddr(10, 0, 1, 254));
  EXPECT_EQ(net.client->routing().lookup(net.server->primary_ip())->gateway,
            net::IpAddr(10, 0, 2, 254));
}

// -------------------------------------------------------------------------
// LaneScheduler::reprioritize

TEST(LaneSchedulerReprioritize, MovesQueuedEntriesPreservingSeqOrder) {
  core::LaneScheduler sched{core::SchedulerConfig{.lanes = 1}};
  sched.record_admissions(16);

  std::vector<core::LaneScheduler::Done> held;
  auto hold = [&held](core::LaneScheduler::Done done) {
    held.push_back(std::move(done));
  };
  auto profile = [](std::uint64_t tag) {
    core::ProbeProfile p;
    p.tag = tag;
    p.priority = ProbeClass::kNormal;
    return p;
  };

  sched.enqueue(hold, profile(100));  // admitted at once, occupies the lane
  sched.enqueue(hold, profile(1));
  sched.enqueue(hold, profile(2));
  sched.enqueue(hold, profile(2));  // same path tag queued twice
  sched.enqueue(hold, profile(3));
  ASSERT_EQ(sched.in_flight(), 1u);
  ASSERT_EQ(sched.queued(), 4u);

  // The control plane concentrates budget on path 2; in-flight unaffected.
  EXPECT_EQ(sched.reprioritize(2, ProbeClass::kCritical), 2u);
  EXPECT_EQ(sched.reprioritize(99, ProbeClass::kCritical), 0u);
  EXPECT_EQ(sched.in_flight(), 1u);

  // Drain: both tag-2 entries must be admitted first, in enqueue order.
  while (!held.empty()) {
    auto done = std::move(held.front());
    held.erase(held.begin());
    done();
  }
  ASSERT_EQ(sched.queued(), 0u);
  sched.check_consistency();

  const auto& trace = sched.admissions();
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[0].tag, 100u);
  EXPECT_EQ(trace[1].tag, 2u);
  EXPECT_EQ(trace[2].tag, 2u);
  EXPECT_LT(trace[1].entry_seq, trace[2].entry_seq);  // FIFO within class
  EXPECT_EQ(trace[1].priority, ProbeClass::kCritical);
  EXPECT_EQ(trace[3].tag, 1u);
  EXPECT_EQ(trace[4].tag, 3u);
}

// -------------------------------------------------------------------------
// SensorDirector retuning hooks + PriorityBoostActuator + ProbeRetuneActuator

class DirectorHooksFixture : public ::testing::Test {
 protected:
  DirectorHooksFixture() {
    apps::TestbedOptions options;
    options.servers = 1;
    options.clients = 2;
    bed = std::make_unique<apps::Testbed>(sim, options);
    core::HighFidelityMonitor::Config cfg;
    cfg.probe.message_count = 2;
    cfg.probe.inter_send = Duration::ms(5);
    monitor = std::make_unique<core::HighFidelityMonitor>(bed->network(), cfg);
  }

  core::SensorDirector::RequestId submit(Duration period) {
    core::MonitorRequest request;
    request.paths = bed->full_matrix({core::Metric::kReachability});
    request.mode = core::MonitorRequest::Mode::kContinuous;
    request.period = period;
    return monitor->director().submit(request, nullptr);
  }

  sim::Simulator sim;
  std::unique_ptr<apps::Testbed> bed;
  std::unique_ptr<core::HighFidelityMonitor> monitor;
};

TEST_F(DirectorHooksFixture, RetunePeriodTakesEffectAndReads) {
  const auto id = submit(Duration::sec(1));
  ASSERT_TRUE(monitor->director().period_of(id).has_value());
  EXPECT_EQ(monitor->director().period_of(id)->nanos(),
            Duration::sec(1).nanos());

  EXPECT_TRUE(monitor->director().retune_period(id, Duration::sec(4)));
  EXPECT_EQ(monitor->director().period_of(id)->nanos(),
            Duration::sec(4).nanos());

  // Unknown requests and non-positive periods are refused.
  EXPECT_FALSE(monitor->director().retune_period(id + 99, Duration::sec(1)));
  EXPECT_FALSE(monitor->director().retune_period(id, Duration::ns(0)));
  EXPECT_FALSE(monitor->director().period_of(id + 99).has_value());
}

TEST_F(DirectorHooksFixture, PathPriorityRoundTripsThroughDirector) {
  const auto id = submit(Duration::sec(1));
  const core::Path path = bed->path(0, 0);
  ASSERT_TRUE(monitor->director().path_priority(id, path).has_value());
  EXPECT_EQ(*monitor->director().path_priority(id, path),
            ProbeClass::kNormal);

  EXPECT_TRUE(
      monitor->director().set_path_priority(id, path, ProbeClass::kCritical));
  EXPECT_EQ(*monitor->director().path_priority(id, path),
            ProbeClass::kCritical);
  EXPECT_FALSE(monitor->director().set_path_priority(id + 99, path,
                                                     ProbeClass::kCritical));
}

TEST_F(DirectorHooksFixture, BoostActuatorRestoresOriginalClass) {
  const auto id = submit(Duration::sec(1));
  const core::Path path = bed->path(0, 1);
  PriorityBoostActuator booster(monitor->director());

  ASSERT_TRUE(booster.boost(id, path, ProbeClass::kCritical));
  EXPECT_EQ(booster.boosted(), 1u);
  EXPECT_FALSE(booster.boost(id, path, ProbeClass::kCritical));  // once only
  EXPECT_EQ(*monitor->director().path_priority(id, path),
            ProbeClass::kCritical);

  ASSERT_TRUE(booster.restore(id, path));
  EXPECT_EQ(booster.boosted(), 0u);
  EXPECT_EQ(*monitor->director().path_priority(id, path),
            ProbeClass::kNormal);
  EXPECT_FALSE(booster.restore(id, path));  // nothing left to restore
}

TEST_F(DirectorHooksFixture, RetuneActuatorLaddersUpAndDown) {
  const auto id = submit(Duration::sec(1));
  ProbeRetuneActuator retuner(monitor->director(), id, 2.0, 2);

  EXPECT_FALSE(retuner.restore());  // already at base
  ASSERT_TRUE(retuner.stretch());
  EXPECT_EQ(retuner.level(), 1);
  EXPECT_EQ(monitor->director().period_of(id)->nanos(),
            Duration::sec(2).nanos());
  ASSERT_TRUE(retuner.stretch());
  EXPECT_EQ(monitor->director().period_of(id)->nanos(),
            Duration::sec(4).nanos());
  EXPECT_FALSE(retuner.stretch());  // max_levels = 2

  ASSERT_TRUE(retuner.restore());
  ASSERT_TRUE(retuner.restore());
  EXPECT_EQ(retuner.level(), 0);
  EXPECT_EQ(monitor->director().period_of(id)->nanos(),
            Duration::sec(1).nanos());
}

// -------------------------------------------------------------------------
// ControlPlane default-OFF contract

TEST(ControlPlaneDisabled, InstallsNothingAndObservesNothing) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 2;
  options.clients = 2;
  apps::Testbed bed(sim, options);
  core::HighFidelityMonitor::Config mon_cfg;
  mon_cfg.probe.message_count = 2;
  mon_cfg.probe.inter_send = Duration::ms(5);
  core::HighFidelityMonitor monitor(bed.network(), mon_cfg);

  mgr::ResourceManager::Config rm_cfg;
  rm_cfg.metrics = {core::Metric::kReachability};
  mgr::ResourceManager manager(monitor.director(), rm_cfg);

  ControlConfig cfg;  // enabled defaults to false
  ControlPlane plane(sim, bed.network(), cfg);
  plane.attach(manager);

  mgr::ManagedApplication app;
  app.name = "rtds";
  app.server_pool = {bed.server_ip(0), bed.server_ip(1)};
  app.client_pool = {bed.client_ip(0), bed.client_ip(1)};
  app.port = apps::kRtdsPort;
  manager.manage(app, bed.server_ip(0));

  sim.run_for(Duration::sec(10));
  EXPECT_GT(manager.tuples_consumed(), 0u);
  // The disabled plane saw nothing, logged nothing, scheduled nothing.
  EXPECT_EQ(plane.stats().tuples_seen, 0u);
  EXPECT_EQ(plane.stats().ticks, 0u);
  EXPECT_EQ(plane.policy().log().emitted(), 0u);
  EXPECT_EQ(plane.policy().stats().fired, 0u);
}

}  // namespace
}  // namespace netmon::ctrl
