#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "core/hybrid_monitor.hpp"
#include "core/measurement_db.hpp"
#include "core/scalable_monitor.hpp"
#include "core/sensor_director.hpp"
#include "core/sequencer.hpp"

namespace netmon::core {
namespace {

using sim::Duration;
using sim::TimePoint;

Path make_path(int a, int b) {
  return Path(ProcessEndpoint{"p", net::IpAddr(10, 0, 0, std::uint8_t(a)), 1},
              ProcessEndpoint{"q", net::IpAddr(10, 0, 0, std::uint8_t(b)), 1});
}

TEST(Path, ConstructionAndAccessors) {
  const Path p = make_path(1, 2);
  EXPECT_EQ(p.leg_count(), 1u);
  EXPECT_EQ(p.source().host, net::IpAddr(10, 0, 0, 1));
  EXPECT_EQ(p.destination().host, net::IpAddr(10, 0, 0, 2));
  EXPECT_EQ(p.to_string(), "p@10.0.0.1:1 -> q@10.0.0.2:1");
  EXPECT_THROW(Path(std::vector<ProcessEndpoint>{ProcessEndpoint{}}),
               std::invalid_argument);
  EXPECT_THROW(p.leg(1), std::out_of_range);
}

TEST(Path, MultiHopLegs) {
  const Path p(std::vector<ProcessEndpoint>{
      ProcessEndpoint{"a", net::IpAddr(10, 0, 0, 1), 0},
      ProcessEndpoint{"b", net::IpAddr(10, 0, 0, 2), 0},
      ProcessEndpoint{"c", net::IpAddr(10, 0, 0, 3), 0}});
  EXPECT_EQ(p.leg_count(), 2u);
  EXPECT_EQ(p.leg(1).first.host, net::IpAddr(10, 0, 0, 2));
}

// --- measurement database ----------------------------------------------------

TEST(MeasurementDb, CurrentVsLastKnown) {
  MeasurementDatabase db;
  const Path p = make_path(1, 2);
  const auto t0 = TimePoint::from_nanos(0);
  db.record(p, Metric::kThroughput, MetricValue::of(5e6, t0));

  const auto t_fresh = t0 + Duration::sec(1);
  auto current = db.current(p, Metric::kThroughput, t_fresh, Duration::sec(5));
  ASSERT_TRUE(current);
  EXPECT_DOUBLE_EQ(current->value.value, 5e6);

  const auto t_stale = t0 + Duration::sec(100);
  EXPECT_FALSE(db.current(p, Metric::kThroughput, t_stale, Duration::sec(5)));
  auto last = db.last_known(p, Metric::kThroughput);
  ASSERT_TRUE(last);
  EXPECT_DOUBLE_EQ(last->value.value, 5e6);
}

TEST(MeasurementDb, LastKnownSurvivesFailedMeasurements) {
  MeasurementDatabase db;
  const Path p = make_path(1, 2);
  db.record(p, Metric::kThroughput,
            MetricValue::of(5e6, TimePoint::from_nanos(100)));
  db.record(p, Metric::kThroughput,
            MetricValue::failed(TimePoint::from_nanos(200)));
  auto last = db.last_known(p, Metric::kThroughput);
  ASSERT_TRUE(last);
  EXPECT_TRUE(last->value.valid);
  EXPECT_DOUBLE_EQ(last->value.value, 5e6);
  // Senescence reflects the newest record, even a failed one.
  auto age = db.senescence(p, Metric::kThroughput, TimePoint::from_nanos(500));
  ASSERT_TRUE(age);
  EXPECT_EQ(age->nanos(), 300);
}

TEST(MeasurementDb, SeriesAreIndependentPerMetricAndPath) {
  MeasurementDatabase db;
  db.record(make_path(1, 2), Metric::kThroughput,
            MetricValue::of(1.0, TimePoint::from_nanos(1)));
  db.record(make_path(1, 2), Metric::kReachability,
            MetricValue::of(1.0, TimePoint::from_nanos(1)));
  db.record(make_path(1, 3), Metric::kThroughput,
            MetricValue::of(2.0, TimePoint::from_nanos(1)));
  EXPECT_EQ(db.tracked_series(), 3u);
  EXPECT_FALSE(db.last_known(make_path(2, 1), Metric::kThroughput));
}

TEST(MeasurementDb, HistoryBounded) {
  MeasurementDatabase db(4);
  const Path p = make_path(1, 2);
  for (int i = 0; i < 10; ++i) {
    db.record(p, Metric::kOneWayLatency,
              MetricValue::of(i, TimePoint::from_nanos(i)));
  }
  const auto* history = db.history(p, Metric::kOneWayLatency);
  ASSERT_NE(history, nullptr);
  EXPECT_EQ(history->size(), 4u);
  EXPECT_DOUBLE_EQ(history->newest().value.value, 9.0);
  EXPECT_DOUBLE_EQ(history->oldest().value.value, 6.0);
  EXPECT_EQ(db.records_written(), 10u);
}

TEST(MeasurementDb, PathInterningIsStableAndDense) {
  MeasurementDatabase db;
  const Path p1 = make_path(1, 2);
  const Path p2 = make_path(1, 3);
  const PathId id1 = db.id_of(p1);
  const PathId id2 = db.id_of(p2);
  EXPECT_EQ(id1, 0u);
  EXPECT_EQ(id2, 1u);
  EXPECT_EQ(db.id_of(p1), id1);  // idempotent
  EXPECT_EQ(db.find(p2), id2);
  EXPECT_EQ(db.find(make_path(9, 9)), kInvalidPathId);
  EXPECT_EQ(db.path_of(id1), p1);
  EXPECT_EQ(db.interned_paths(), 2u);
  // Interning alone creates no tracked series.
  EXPECT_EQ(db.tracked_series(), 0u);
  EXPECT_FALSE(db.last_known(p1, Metric::kThroughput));
  EXPECT_EQ(db.history(p1, Metric::kThroughput), nullptr);
}

TEST(MeasurementDb, IdAndPathKeyedApisAgree) {
  MeasurementDatabase db;
  const Path p = make_path(4, 5);
  const PathId id = db.id_of(p);
  db.record(id, Metric::kOneWayLatency,
            MetricValue::of(0.5, TimePoint::from_nanos(100)));
  db.record(p, Metric::kOneWayLatency,
            MetricValue::of(0.7, TimePoint::from_nanos(200)));
  // Both writes landed on the same series, whichever key queries it.
  auto by_id = db.last_known(id, Metric::kOneWayLatency);
  auto by_path = db.last_known(p, Metric::kOneWayLatency);
  ASSERT_TRUE(by_id && by_path);
  EXPECT_DOUBLE_EQ(by_id->value.value, 0.7);
  EXPECT_DOUBLE_EQ(by_path->value.value, 0.7);
  EXPECT_EQ(db.history(id, Metric::kOneWayLatency)->size(), 2u);
  EXPECT_EQ(db.tracked_series(), 1u);
  EXPECT_EQ(db.records_written(), 2u);
}

TEST(MeasurementDb, SenescenceMonotoneBetweenUpdates) {
  MeasurementDatabase db;
  const Path p = make_path(1, 2);
  db.record(p, Metric::kReachability,
            MetricValue::of(1.0, TimePoint::from_nanos(1000)));
  const auto age1 = db.senescence(p, Metric::kReachability,
                                  TimePoint::from_nanos(2000));
  const auto age2 = db.senescence(p, Metric::kReachability,
                                  TimePoint::from_nanos(5000));
  ASSERT_TRUE(age1 && age2);
  EXPECT_LT(age1->nanos(), age2->nanos());
}

// --- sequencer ----------------------------------------------------------------

TEST(Sequencer, SerialRunsOneAtATime) {
  TestSequencer seq(1);
  std::vector<TestSequencer::Done> pending;
  int started = 0;
  for (int i = 0; i < 5; ++i) {
    seq.enqueue([&](TestSequencer::Done done) {
      ++started;
      pending.push_back(std::move(done));
    });
  }
  EXPECT_EQ(started, 1);
  EXPECT_EQ(seq.in_flight(), 1u);
  EXPECT_EQ(seq.queued(), 4u);
  // Completing each job admits exactly the next.
  for (int i = 0; i < 5; ++i) {
    auto done = std::move(pending.back());
    pending.pop_back();
    done();
    EXPECT_EQ(started, std::min(i + 2, 5));
  }
  EXPECT_TRUE(seq.idle());
  EXPECT_EQ(seq.completed(), 5u);
}

TEST(Sequencer, ConcurrencyNeverExceedsLimit) {
  TestSequencer seq(3);
  std::size_t max_seen = 0;
  std::vector<TestSequencer::Done> pending;
  for (int i = 0; i < 20; ++i) {
    seq.enqueue([&](TestSequencer::Done done) {
      pending.push_back(std::move(done));
      max_seen = std::max(max_seen, seq.in_flight());
    });
    if (pending.size() > 1 && i % 3 == 0) {
      auto done = std::move(pending.front());
      pending.erase(pending.begin());
      done();
    }
  }
  while (!pending.empty()) {
    auto done = std::move(pending.front());
    pending.erase(pending.begin());
    done();
  }
  EXPECT_LE(max_seen, 3u);
  EXPECT_EQ(seq.completed(), 20u);
  EXPECT_TRUE(seq.idle());
}

TEST(Sequencer, SynchronousTasksDrainCompletely) {
  TestSequencer seq(1);
  int ran = 0;
  for (int i = 0; i < 100; ++i) {
    seq.enqueue([&](TestSequencer::Done done) {
      ++ran;
      done();
    });
  }
  EXPECT_EQ(ran, 100);
  EXPECT_TRUE(seq.idle());
}

TEST(Sequencer, ZeroConcurrencyRejected) {
  EXPECT_THROW(TestSequencer(0), std::invalid_argument);
  TestSequencer seq(1);
  EXPECT_THROW(seq.set_max_concurrent(0), std::invalid_argument);
}

TEST(Sequencer, RaisingLimitDrainsQueue) {
  TestSequencer seq(1);
  std::vector<TestSequencer::Done> pending;
  for (int i = 0; i < 4; ++i) {
    seq.enqueue(
        [&](TestSequencer::Done done) { pending.push_back(std::move(done)); });
  }
  EXPECT_EQ(seq.in_flight(), 1u);
  seq.set_max_concurrent(4);
  EXPECT_EQ(seq.in_flight(), 4u);
  for (auto& done : pending) done();
}

// --- sensor director with a scripted sensor -----------------------------------

// Deterministic fake sensor: completes after a fixed simulated delay.
class FakeSensor : public NetworkSensor {
 public:
  FakeSensor(sim::Simulator& sim, Duration delay, double value)
      : sim_(sim), delay_(delay), value_(value) {}

  std::string name() const override { return "fake"; }
  bool supports(Metric) const override { return true; }
  void measure(const Path&, Metric, Done done) override {
    ++in_flight_;
    max_in_flight_ = std::max(max_in_flight_, in_flight_);
    ++measurements_;
    sim_.schedule_in(delay_, [this, done = std::move(done)] {
      --in_flight_;
      done(fail_next_ ? MetricValue::failed(sim_.now())
                      : MetricValue::of(value_, sim_.now()));
    });
  }

  int measurements_ = 0;
  int in_flight_ = 0;
  int max_in_flight_ = 0;
  bool fail_next_ = false;

 private:
  sim::Simulator& sim_;
  Duration delay_;
  double value_;
};

class DirectorFixture : public ::testing::Test {
 protected:
  DirectorFixture() : sensor(sim, Duration::ms(10), 42.0), director(sim, 1) {
    director.register_sensor(Metric::kThroughput, &sensor);
    director.register_sensor(Metric::kReachability, &sensor);
    director.register_sensor(Metric::kOneWayLatency, &sensor);
  }
  MonitorRequest one_shot(int paths, std::vector<Metric> metrics) {
    MonitorRequest request;
    for (int i = 0; i < paths; ++i) {
      request.paths.push_back(PathRequest{make_path(1, 10 + i), metrics});
    }
    return request;
  }
  sim::Simulator sim;
  FakeSensor sensor;
  SensorDirector director;
};

TEST_F(DirectorFixture, OnceModeReportsEveryTupleAndFinishes) {
  std::vector<PathMetricTuple> tuples;
  director.submit(one_shot(3, {Metric::kThroughput, Metric::kReachability}),
                  [&](const PathMetricTuple& t) { tuples.push_back(t); });
  sim.run();
  EXPECT_EQ(tuples.size(), 6u);
  EXPECT_EQ(director.stats().rounds_completed, 1u);
  EXPECT_EQ(director.stats().measurements_failed, 0u);
  // All recorded in the database.
  EXPECT_EQ(director.database().records_written(), 6u);
}

TEST_F(DirectorFixture, EmptyPathListRejected) {
  EXPECT_THROW(director.submit(MonitorRequest{}, nullptr), std::invalid_argument);
}

TEST_F(DirectorFixture, MissingSensorRejected) {
  SensorDirector bare(sim, 1);
  EXPECT_THROW(bare.submit(one_shot(1, {Metric::kThroughput}), nullptr),
               std::logic_error);
}

TEST_F(DirectorFixture, SequencerSerializesMeasurements) {
  director.submit(one_shot(8, {Metric::kThroughput}), nullptr);
  sim.run();
  EXPECT_EQ(sensor.max_in_flight_, 1);
  EXPECT_EQ(sensor.measurements_, 8);
}

TEST_F(DirectorFixture, ParallelDirectorOverlapsMeasurements) {
  SensorDirector parallel(sim, TestSequencer::kUnlimited);
  parallel.register_sensor(Metric::kThroughput, &sensor);
  MonitorRequest request = one_shot(8, {Metric::kThroughput});
  parallel.submit(request, nullptr);
  sim.run();
  EXPECT_EQ(sensor.max_in_flight_, 8);
}

TEST_F(DirectorFixture, SynchronousReportingBatchesRound) {
  std::vector<std::size_t> batch_sizes;
  MonitorRequest request = one_shot(4, {Metric::kThroughput});
  request.reporting = MonitorRequest::Reporting::kSynchronous;
  director.submit(request, nullptr,
                  [&](const std::vector<PathMetricTuple>& batch) {
                    batch_sizes.push_back(batch.size());
                  });
  sim.run();
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 4u);
}

TEST_F(DirectorFixture, ContinuousModeCyclesUntilCancelled) {
  MonitorRequest request = one_shot(2, {Metric::kThroughput});
  request.mode = MonitorRequest::Mode::kContinuous;
  const auto id = director.submit(request, nullptr);
  sim.run_for(Duration::ms(205));
  // Each round: 2 serial measurements x 10ms = 20ms -> ~10 rounds in 205ms.
  EXPECT_GE(director.stats().rounds_completed, 9u);
  director.cancel(id);
  const auto rounds = director.stats().rounds_completed;
  sim.run_for(Duration::sec(1));
  EXPECT_LE(director.stats().rounds_completed, rounds + 1);
}

TEST_F(DirectorFixture, PeriodicModeStartsRoundsAtPeriod) {
  MonitorRequest request = one_shot(1, {Metric::kThroughput});
  request.mode = MonitorRequest::Mode::kPeriodic;
  request.period = Duration::ms(100);
  const auto id = director.submit(request, nullptr);
  sim.run_for(Duration::ms(950));
  director.cancel(id);
  // Rounds at t=0,100,...,900 -> 10 rounds.
  EXPECT_EQ(director.stats().rounds_completed, 10u);
}

TEST_F(DirectorFixture, FailedMeasurementsCountedAndRecorded) {
  sensor.fail_next_ = true;
  std::vector<PathMetricTuple> tuples;
  director.submit(one_shot(1, {Metric::kThroughput}),
                  [&](const PathMetricTuple& t) { tuples.push_back(t); });
  sim.run();
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_FALSE(tuples[0].value.valid);
  EXPECT_EQ(director.stats().measurements_failed, 1u);
}

TEST_F(DirectorFixture, RecordToDatabaseCanBeDisabled) {
  MonitorRequest request = one_shot(2, {Metric::kThroughput});
  request.record_to_database = false;
  director.submit(request, nullptr);
  sim.run();
  EXPECT_EQ(director.database().records_written(), 0u);
}

TEST_F(DirectorFixture, WrongSensorRegistrationRejected) {
  class LatencyOnly : public NetworkSensor {
   public:
    std::string name() const override { return "lat"; }
    bool supports(Metric m) const override {
      return m == Metric::kOneWayLatency;
    }
    void measure(const Path&, Metric, Done done) override {
      done(MetricValue::failed(sim::TimePoint{}));
    }
  } latency_only;
  EXPECT_THROW(director.register_sensor(Metric::kThroughput, &latency_only),
               std::invalid_argument);
}

// --- end-to-end monitors over the testbed -------------------------------------

class MonitorFixture : public ::testing::Test {
 protected:
  MonitorFixture() {
    apps::TestbedOptions options;
    options.servers = 2;
    options.clients = 3;
    bed = std::make_unique<apps::Testbed>(sim, options);
  }
  sim::Simulator sim;
  std::unique_ptr<apps::Testbed> bed;
};

TEST_F(MonitorFixture, HighFidelityMonitorMeasuresMatrix) {
  HighFidelityMonitor::Config cfg;
  cfg.probe.message_count = 8;
  cfg.probe.inter_send = Duration::ms(5);
  HighFidelityMonitor monitor(bed->network(), cfg);

  MonitorRequest request;
  request.paths = bed->full_matrix(
      {Metric::kThroughput, Metric::kReachability});
  std::vector<PathMetricTuple> tuples;
  monitor.director().submit(
      request, [&](const PathMetricTuple& t) { tuples.push_back(t); });
  sim.run_for(Duration::sec(30));
  ASSERT_EQ(tuples.size(), 12u);  // 2x3 paths x 2 metrics
  for (const auto& t : tuples) {
    EXPECT_TRUE(t.value.valid) << t.path.to_string();
    if (t.metric == Metric::kReachability) {
      EXPECT_DOUBLE_EQ(t.value.value, 1.0);
    } else {
      EXPECT_GT(t.value.value, 1e6);
    }
  }
}

TEST_F(MonitorFixture, HighFidelityDetectsDownHost) {
  bed->client(1).set_up(false);
  HighFidelityMonitor::Config cfg;
  cfg.probe.message_count = 4;
  HighFidelityMonitor monitor(bed->network(), cfg);
  MonitorRequest request;
  request.paths.push_back(
      PathRequest{bed->path(0, 1), {Metric::kReachability}});
  std::vector<PathMetricTuple> tuples;
  monitor.director().submit(
      request, [&](const PathMetricTuple& t) { tuples.push_back(t); });
  sim.run_for(Duration::sec(10));
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_TRUE(tuples[0].value.valid);
  EXPECT_DOUBLE_EQ(tuples[0].value.value, 0.0);
}

TEST_F(MonitorFixture, ScalableMonitorPollsViaSnmp) {
  ScalableMonitor monitor(bed->network(), bed->station());
  // Put application traffic on server0's interface so the counter-based
  // estimate has something to see.
  apps::TrafficSink sink(bed->client(0));
  apps::CbrTraffic::Config traffic;
  traffic.rate_bps = 2e6;
  traffic.packet_bytes = 1024;
  apps::CbrTraffic cbr(bed->server(0), bed->client_ip(0), traffic);
  cbr.start();

  MonitorRequest request;
  request.paths.push_back(PathRequest{
      bed->path(0, 0),
      {Metric::kThroughput, Metric::kReachability, Metric::kOneWayLatency}});
  std::vector<PathMetricTuple> tuples;
  monitor.director().submit(
      request, [&](const PathMetricTuple& t) { tuples.push_back(t); });
  sim.run_for(Duration::sec(10));
  cbr.stop();
  ASSERT_EQ(tuples.size(), 3u);
  for (const auto& t : tuples) {
    EXPECT_TRUE(t.value.valid);
    if (t.metric == Metric::kThroughput) {
      // Counter-derived estimate: right order of magnitude.
      EXPECT_GT(t.value.value, 1e6);
      EXPECT_LT(t.value.value, 4e6);
    }
    if (t.metric == Metric::kReachability) {
      EXPECT_DOUBLE_EQ(t.value.value, 1.0);
    }
  }
}

TEST_F(MonitorFixture, ScalableMonitorSeesDownAgentAsUnreachable) {
  bed->client(2).set_up(false);
  ScalableMonitor monitor(bed->network(), bed->station());
  MonitorRequest request;
  request.paths.push_back(PathRequest{bed->path(0, 2), {Metric::kReachability}});
  std::vector<PathMetricTuple> tuples;
  monitor.director().submit(
      request, [&](const PathMetricTuple& t) { tuples.push_back(t); });
  sim.run_for(Duration::sec(10));
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_DOUBLE_EQ(tuples[0].value.value, 0.0);
}

TEST_F(MonitorFixture, HybridEscalatesOnReachabilityLoss) {
  HybridMonitor::Config cfg;
  cfg.probe.message_count = 4;
  cfg.probe.inter_send = Duration::ms(5);
  cfg.background_period = Duration::ms(500);
  HybridMonitor monitor(bed->network(), bed->station(), cfg);

  std::vector<PathMetricTuple> tuples;
  monitor.start(
      {PathRequest{bed->path(0, 0), {Metric::kReachability}}},
      [&](const PathMetricTuple& t) { tuples.push_back(t); });
  sim.run_for(Duration::sec(2));
  EXPECT_EQ(monitor.escalations(), 0u);

  bed->client(0).set_up(false);
  sim.run_for(Duration::sec(5));
  EXPECT_GT(monitor.escalations(), 0u);
  EXPECT_GT(monitor.targeted_measurements(), 0u);
  monitor.stop();
}

}  // namespace
}  // namespace netmon::core
