// End-to-end scenarios spanning every subsystem: the full Figure-1 loop
// (application + monitor + resource manager) and cross-monitor consistency.

#include <gtest/gtest.h>

#include "apps/rtds.hpp"
#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "core/hybrid_monitor.hpp"
#include "core/scalable_monitor.hpp"
#include "manager/resource_manager.hpp"
#include "rmon/probe.hpp"

namespace netmon {
namespace {

using sim::Duration;

// The headline scenario: RTDS runs on server0; server0 dies; the monitor
// notices; the resource manager fails over; clients keep getting tracks.
TEST(Integration, RtdsSurvivesServerFailure) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 3;
  options.clients = 4;
  apps::Testbed bed(sim, options);

  // Application processes on every pool member (only the active one runs).
  std::vector<std::unique_ptr<apps::RtdsServer>> servers;
  for (int s = 0; s < bed.server_count(); ++s) {
    servers.push_back(std::make_unique<apps::RtdsServer>(
        bed.server(s), apps::RtdsServer::Config{}));
  }
  servers[0]->start();

  std::vector<std::unique_ptr<apps::RtdsClient>> clients;
  for (int c = 0; c < bed.client_count(); ++c) {
    clients.push_back(std::make_unique<apps::RtdsClient>(
        bed.client(c), apps::RtdsClient::Config{}));
    clients.back()->connect(bed.server_ip(0));
  }

  // Monitor + resource manager.
  core::HighFidelityMonitor::Config mon_cfg;
  mon_cfg.probe.message_count = 4;
  mon_cfg.probe.inter_send = Duration::ms(5);
  mon_cfg.probe.result_timeout = Duration::ms(500);
  core::HighFidelityMonitor monitor(bed.network(), mon_cfg);

  mgr::ResourceManager::Config rm_cfg;
  rm_cfg.metrics = {core::Metric::kReachability};
  rm_cfg.strikes = 2;
  mgr::ResourceManager manager(monitor.director(), rm_cfg);

  mgr::ManagedApplication app;
  app.name = "rtds";
  for (int s = 0; s < bed.server_count(); ++s) {
    app.server_pool.push_back(bed.server_ip(s));
  }
  for (int c = 0; c < bed.client_count(); ++c) {
    app.client_pool.push_back(bed.client_ip(c));
  }
  app.port = apps::kRtdsPort;

  // Wire reconfiguration to the application layer: start the replacement
  // server process and repoint every client.
  manager.set_reconfiguration_callback(
      [&](const mgr::ReconfigurationEvent& event) {
        for (int s = 0; s < bed.server_count(); ++s) {
          if (bed.server_ip(s) == event.new_server) {
            servers[s]->start();
          } else {
            servers[s]->stop();
          }
        }
        for (auto& client : clients) client->connect(event.new_server);
      });
  manager.manage(app, bed.server_ip(0));

  sim.run_for(Duration::sec(5));
  const auto tracks_before = clients[0]->tracks_received();
  EXPECT_GT(tracks_before, 100u);

  // Kill the active server host.
  bed.server(0).set_up(false);
  sim.run_for(Duration::sec(60));

  EXPECT_GE(manager.reconfigurations(), 1u);
  EXPECT_NE(manager.active_server("rtds"), bed.server_ip(0));
  // Clients resumed receiving tracks from the new server.
  EXPECT_GT(clients[0]->tracks_received(), tracks_before + 500);
  // The outage was bounded: the longest gap is far below the 60 s window.
  EXPECT_LT(clients[0]->longest_gap().to_seconds(), 30.0);
}

// The database's last-known-value answers outlive a dead sensor target
// (paper §4.1: "enables both current value and last known value reporting").
TEST(Integration, DatabaseServesLastKnownAfterFailure) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);
  core::HighFidelityMonitor::Config cfg;
  cfg.probe.message_count = 4;
  cfg.probe.inter_send = Duration::ms(5);
  cfg.probe.result_timeout = Duration::ms(500);
  core::HighFidelityMonitor monitor(bed.network(), cfg);

  core::MonitorRequest request;
  request.paths.push_back(
      core::PathRequest{bed.path(0, 0), {core::Metric::kThroughput}});
  request.mode = core::MonitorRequest::Mode::kContinuous;
  const auto id = monitor.director().submit(request, nullptr);
  sim.run_for(Duration::sec(3));

  auto fresh = monitor.database().current(
      bed.path(0, 0), core::Metric::kThroughput, sim.now(), Duration::sec(2));
  ASSERT_TRUE(fresh);
  const double healthy_value = fresh->value.value;

  bed.client(0).set_up(false);
  sim.run_for(Duration::sec(10));
  monitor.director().cancel(id);

  // Current value is gone (recent samples failed)...
  EXPECT_FALSE(monitor.database().current(bed.path(0, 0),
                                          core::Metric::kThroughput, sim.now(),
                                          Duration::sec(2)));
  // ...but the last-known value survives.
  auto last = monitor.database().last_known(bed.path(0, 0),
                                            core::Metric::kThroughput);
  ASSERT_TRUE(last);
  EXPECT_DOUBLE_EQ(last->value.value, healthy_value);
}

// High-fidelity and SNMP monitors must agree on gross reachability, while
// their throughput figures differ (the fidelity gap the paper reports).
TEST(Integration, MonitorsAgreeOnReachabilityDifferOnFidelity) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 2;
  apps::Testbed bed(sim, options);

  // A low-rate probe stream (0.27 Mb/s offered) next to heavy unrelated
  // cross-traffic from the same interface: the counter-based estimate
  // cannot separate the two (the paper's core fidelity objection).
  core::HighFidelityMonitor::Config hf_cfg;
  hf_cfg.probe.message_length = 1024;
  hf_cfg.probe.message_count = 16;
  hf_cfg.probe.inter_send = Duration::ms(30);
  core::HighFidelityMonitor hf(bed.network(), hf_cfg);
  core::ScalableMonitor snmp_mon(bed.network(), bed.station());

  apps::TrafficSink sink(bed.client(1));
  apps::CbrTraffic::Config cross;
  cross.rate_bps = 6e6;
  cross.packet_bytes = 1024;
  apps::CbrTraffic cbr(bed.server(0), bed.client_ip(1), cross);
  cbr.start();

  core::MonitorRequest request;
  request.paths.push_back(core::PathRequest{
      bed.path(0, 0), {core::Metric::kThroughput, core::Metric::kReachability}});

  std::map<core::Metric, double> hf_values, snmp_values;
  hf.director().submit(request, [&](const core::PathMetricTuple& t) {
    if (t.value.valid) hf_values[t.metric] = t.value.value;
  });
  snmp_mon.director().submit(request, [&](const core::PathMetricTuple& t) {
    if (t.value.valid) snmp_values[t.metric] = t.value.value;
  });
  sim.run_for(Duration::sec(10));
  cbr.stop();

  ASSERT_TRUE(hf_values.count(core::Metric::kReachability));
  ASSERT_TRUE(snmp_values.count(core::Metric::kReachability));
  EXPECT_DOUBLE_EQ(hf_values[core::Metric::kReachability], 1.0);
  EXPECT_DOUBLE_EQ(snmp_values[core::Metric::kReachability], 1.0);

  ASSERT_TRUE(hf_values.count(core::Metric::kThroughput));
  ASSERT_TRUE(snmp_values.count(core::Metric::kThroughput));
  // SNMP sees the whole interface (probe + 6 Mb/s cross-traffic); the
  // probe sees only its own ~0.3 Mb/s stream: the estimates must diverge.
  EXPECT_GT(snmp_values[core::Metric::kThroughput],
            hf_values[core::Metric::kThroughput] * 3.0);
}

// Monitoring traffic is visible and bounded in the per-class accounting —
// the intrusiveness criterion is directly measurable.
TEST(Integration, IntrusivenessAccountedByClass) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 2;
  options.clients = 2;
  apps::Testbed bed(sim, options);
  core::HighFidelityMonitor::Config cfg;
  cfg.probe.message_count = 8;
  cfg.probe.inter_send = Duration::ms(10);
  core::HighFidelityMonitor monitor(bed.network(), cfg);

  core::MonitorRequest request;
  request.paths = bed.full_matrix({core::Metric::kThroughput});
  monitor.director().submit(request, nullptr);
  sim.run_for(Duration::sec(20));

  const auto totals = bed.network().octets_by_class();
  const auto monitoring =
      totals[static_cast<std::size_t>(net::TrafficClass::kMonitoring)];
  EXPECT_GT(monitoring, 0u);
  // Sensor-side accounting should roughly match the wire (probe payload
  // travels one switch hop -> counted twice: host link + switch port).
  EXPECT_GT(monitor.sensor().probe_bytes_on_wire(), 0u);
  EXPECT_EQ(totals[static_cast<std::size_t>(net::TrafficClass::kApplication)],
            0u);
}

// RMON alarm -> trap -> hybrid escalation -> NTTCP probe, end to end on a
// shared segment.
TEST(Integration, HybridReactsToRmonAlarm) {
  sim::Simulator sim;
  apps::SharedLanOptions options;
  options.hosts = 4;
  apps::SharedLanTestbed bed(sim, options);
  rmon::Probe probe(bed.probe_host(), bed.segment());

  core::HybridMonitor::Config cfg;
  cfg.probe.message_count = 4;
  cfg.probe.inter_send = Duration::ms(5);
  cfg.background_period = Duration::sec(30);  // background mostly idle
  core::HybridMonitor monitor(bed.network(), bed.station(), cfg);
  monitor.arm_utilization_alarm(probe, 0.3, 0.05, Duration::ms(500));

  core::Path path(
      core::ProcessEndpoint{"app", bed.host_ip(0), 0},
      core::ProcessEndpoint{"app", bed.host_ip(1), 0});
  std::vector<core::PathMetricTuple> tuples;
  monitor.start({core::PathRequest{path, {core::Metric::kReachability}}},
                [&](const core::PathMetricTuple& t) { tuples.push_back(t); });

  sim.run_for(Duration::sec(2));
  const auto targeted_before = monitor.targeted_measurements();

  // Saturate the segment: alarm crosses, trap fires, hybrid escalates.
  bed.host(3).udp().bind(7009, nullptr);
  apps::CbrTraffic::Config cross;
  cross.rate_bps = 6e6;
  cross.packet_bytes = 1000;
  cross.dst_port = 7009;
  apps::CbrTraffic cbr(bed.host(2), bed.host_ip(3), cross);
  cbr.start();
  sim.run_for(Duration::sec(5));
  cbr.stop();

  EXPECT_GT(monitor.escalations(), 0u);
  EXPECT_GT(monitor.targeted_measurements(), targeted_before);
}

// Whole-system determinism: the same seed reproduces a full scenario —
// application, monitor, SNMP, RMON, failure injection — event for event.
TEST(Integration, SameSeedReproducesWholeSystemRun) {
  struct Fingerprint {
    std::uint64_t tracks;
    std::uint64_t monitoring_octets;
    std::uint64_t management_octets;
    std::uint64_t rmon_packets;
    std::uint64_t collisions;
    std::uint64_t tuples;
    std::uint64_t events;
    bool operator==(const Fingerprint&) const = default;
  };
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim;
    apps::SharedLanOptions options;
    options.hosts = 4;
    options.seed = seed;
    apps::SharedLanTestbed bed(sim, options);
    rmon::Probe probe(bed.probe_host(), bed.segment());

    apps::RtdsServer server(bed.host(0), apps::RtdsServer::Config{});
    apps::RtdsClient client(bed.host(1), apps::RtdsClient::Config{});
    server.start();
    client.connect(bed.host_ip(0));

    apps::OnOffTraffic::Config cross;
    cross.rate_bps = 4e6;
    apps::OnOffTraffic onoff(bed.host(2), bed.host_ip(3), cross,
                             util::Rng(seed ^ 0x5EED));
    bed.host(3).udp().bind(apps::kTrafficSinkPort, nullptr);
    onoff.start();

    core::ScalableMonitor monitor(bed.network(), bed.station());
    core::MonitorRequest request;
    request.paths.push_back(core::PathRequest{
        core::Path(core::ProcessEndpoint{"rtds", bed.host_ip(0), 0},
                   core::ProcessEndpoint{"rtds", bed.host_ip(1), 0}),
        {core::Metric::kReachability, core::Metric::kThroughput}});
    request.mode = core::MonitorRequest::Mode::kPeriodic;
    request.period = sim::Duration::sec(1);
    std::uint64_t tuples = 0;
    monitor.director().submit(request,
                              [&](const core::PathMetricTuple&) { ++tuples; });

    sim.schedule_in(sim::Duration::sec(5), [&] { bed.host(1).set_up(false); });
    sim.schedule_in(sim::Duration::sec(8), [&] { bed.host(1).set_up(true); });
    sim.run_for(sim::Duration::sec(12));

    const auto by_class = bed.network().octets_by_class();
    return Fingerprint{
        client.tracks_received(),
        by_class[static_cast<std::size_t>(net::TrafficClass::kMonitoring)],
        by_class[static_cast<std::size_t>(net::TrafficClass::kManagement)],
        probe.ether_stats().packets,
        bed.segment().stats().collisions,
        tuples,
        sim.events_executed()};
  };
  const auto a = run_once(12345);
  const auto b = run_once(12345);
  EXPECT_EQ(a, b);
  // And a different seed genuinely changes the run.
  const auto c = run_once(54321);
  EXPECT_NE(a.events, c.events);
}

}  // namespace
}  // namespace netmon
